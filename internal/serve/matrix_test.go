package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"

	"tegrecon/internal/scenario"
)

// cellKeysOf normalizes and expands a spec and returns every cell's
// cache key by coordinate.
func cellKeysOf(t *testing.T, m *scenario.Matrix) map[string]string {
	t.Helper()
	n, err := m.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	counts, err := n.Counts()
	if err != nil {
		t.Fatal(err)
	}
	ex, err := n.Expand()
	if err != nil {
		t.Fatal(err)
	}
	p := matrixParams{m: n, counts: counts}
	out := make(map[string]string, len(ex.Cells))
	for _, c := range ex.Cells {
		out[c.Coord] = cellKey(p, c)
	}
	return out
}

func tinyMatrix() *scenario.Matrix {
	return &scenario.Matrix{
		Name:         "tiny",
		MaxDurationS: 6,
		Cycles:       []scenario.CycleSpec{{Synth: &scenario.SynthSpec{Profile: "urban", Seed: 9, DurationS: 6}}},
		Schemes:      []string{"INOR"},
		Ambients:     []scenario.AmbientSpec{{AmbientC: 20}},
		Faults:       []scenario.FaultSpec{{Storm: &scenario.StormSpec{Count: 1}}},
		ArraySizes:   []int{20},
	}
}

// TestCellKeyDistinguishesEveryAxis is the canonicalization regression
// test: two cells that differ in any physically meaningful way — an
// ambient point, a storm seed offset, a synth-cycle parameter, or a
// matrix-level knob the coordinate deliberately omits — must never
// share a SHA-256 cache key.
func TestCellKeyDistinguishesEveryAxis(t *testing.T) {
	base := cellKeysOf(t, tinyMatrix())
	if len(base) != 1 {
		t.Fatalf("tiny matrix has %d cells, want 1", len(base))
	}
	variants := []struct {
		name string
		mut  func(*scenario.Matrix)
	}{
		{"ambient", func(m *scenario.Matrix) { m.Ambients[0].AmbientC = 20.5 }},
		{"coolant offset", func(m *scenario.Matrix) { m.Ambients[0].CoolantOffsetC = 1 }},
		{"storm seed offset", func(m *scenario.Matrix) { m.Faults[0].Storm.SeedOffset = 1 }},
		{"storm count", func(m *scenario.Matrix) { m.Faults[0].Storm.Count = 2 }},
		{"synth seed", func(m *scenario.Matrix) { m.Cycles[0].Synth.Seed = 10 }},
		{"synth grade", func(m *scenario.Matrix) { m.Cycles[0].Synth.GradePct = 1.5 }},
		{"synth stops", func(m *scenario.Matrix) { m.Cycles[0].Synth.StopFactor = 2 }},
		{"duration cap", func(m *scenario.Matrix) { m.MaxDurationS = 5 }},
		{"base seed", func(m *scenario.Matrix) { m.Seed = 8 }},
		{"tick", func(m *scenario.Matrix) { m.TickS = 0.25 }},
		{"noise", func(m *scenario.Matrix) { v := 0.2; m.SensorNoiseC = &v }},
		{"horizon", func(m *scenario.Matrix) { m.HorizonTicks = 6 }},
		{"modules", func(m *scenario.Matrix) { m.ArraySizes = []int{25} }},
	}
	seen := map[string]string{}
	for k := range base {
		seen[base[k]] = "base"
	}
	for _, v := range variants {
		m := tinyMatrix()
		v.mut(m)
		for _, key := range cellKeysOf(t, m) {
			if prev, dup := seen[key]; dup {
				t.Errorf("variant %q collides with %q on cell key %s", v.name, prev, key)
			}
			seen[key] = v.name
		}
	}
}

// TestMatrixKeySurfaceFormInvariant: spellings that normalize to the
// same spec must share the envelope key and every cell key.
func TestMatrixKeySurfaceFormInvariant(t *testing.T) {
	a := tinyMatrix()
	b := tinyMatrix()
	b.Schemes = []string{"inor"} // case only
	b.Seed = 0                   // defaults to 7
	b.TickS = 0
	b.HorizonTicks = 0
	na, err := a.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	nb, err := b.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	ka, err := matrixKey(na)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := matrixKey(nb)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("surface spellings produced different matrix keys %s / %s", ka, kb)
	}
	if !maps_equal(cellKeysOf(t, a), cellKeysOf(t, b)) {
		t.Fatal("surface spellings produced different cell keys")
	}
}

func maps_equal(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestMatrixEndpointCommittedSpec is the PR's serve-side acceptance
// test, run against the example spec committed at examples/matrix —
// the same bytes a user would POST. The first submission computes, the
// repeat must be a byte-identical envelope-cache hit, and the status
// endpoints must show every cell content-addressed into the cache.
func TestMatrixEndpointCommittedSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full committed 288-cell spec")
	}
	spec, err := os.ReadFile("../../examples/matrix/spec.json")
	if err != nil {
		t.Fatal(err)
	}
	// The cell cache must out-size the grid for every cell to stay
	// resident (the default 256 entries would evict the first cells of
	// a 288-cell matrix; the envelope cache would still serve repeats).
	_, ts := newTestServer(t, Config{CacheEntries: 1024})

	resp1, body1 := postJSON(t, ts.URL+"/v1/matrix", string(spec))
	if resp1.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first submission X-Cache = %q, want miss", got)
	}
	if got := resp1.Header.Get("X-Matrix-Cells-Cached"); got != "0" {
		t.Fatalf("first submission served %s cells from cache, want 0", got)
	}
	key := resp1.Header.Get("X-Cache-Key")
	if key == "" {
		t.Fatal("no X-Cache-Key")
	}

	var env struct {
		Version int             `json:"version"`
		Name    string          `json:"name"`
		Counts  scenario.Counts `json:"counts"`
		Cells   []struct {
			Coord      string  `json:"coord"`
			EnergyOutJ float64 `json:"energy_out_j"`
		} `json:"cells"`
		Marginals []struct {
			Axis  string `json:"axis"`
			Value string `json:"value"`
		} `json:"marginals"`
	}
	if err := json.Unmarshal(body1, &env); err != nil {
		t.Fatal(err)
	}
	if env.Name != "example-grid" || len(env.Cells) != 288 || env.Counts.Cells != 288 {
		t.Fatalf("envelope name %q, %d cells (counts %d), want example-grid/288", env.Name, len(env.Cells), env.Counts.Cells)
	}
	for i, c := range env.Cells {
		if c.EnergyOutJ <= 0 {
			t.Fatalf("cell %d (%s) produced no energy", i, c.Coord)
		}
	}
	if len(env.Marginals) == 0 {
		t.Fatal("no marginals in envelope")
	}

	resp2, body2 := postJSON(t, ts.URL+"/v1/matrix", string(spec))
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat submission X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("repeat submission is not byte-identical")
	}
	if k2 := resp2.Header.Get("X-Cache-Key"); k2 != key {
		t.Fatalf("repeat key %s != %s", k2, key)
	}

	// Twin-style status: the registry lists the matrix with every cell
	// content-addressed into the cache.
	resp, err := http.Get(ts.URL + "/v1/matrix")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Matrices []struct {
			Key         string `json:"key"`
			Name        string `json:"name"`
			CachedCells int    `json:"cached_cells"`
		} `json:"matrices"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Matrices) != 1 || list.Matrices[0].Key != key {
		t.Fatalf("matrix listing: %+v", list)
	}
	if list.Matrices[0].CachedCells != 288 {
		t.Fatalf("listing shows %d cached cells, want 288", list.Matrices[0].CachedCells)
	}

	resp, err = http.Get(ts.URL + "/v1/matrix/" + key)
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Cells []struct {
			Coord  string `json:"coord"`
			Cached bool   `json:"cached"`
		} `json:"cells"`
	}
	err = json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(status.Cells) != 288 {
		t.Fatalf("status lists %d cells, want 288", len(status.Cells))
	}
	for _, c := range status.Cells {
		if !c.Cached {
			t.Fatalf("cell %s not cached after a full run", c.Coord)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/matrix/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown matrix key: status %d, want 404", resp.StatusCode)
	}
}

// TestMatrixPartialCellReuse: a new matrix that overlaps an old one
// pays only for its new cells — the overlap is served from the
// per-cell cache and reported in X-Matrix-Cells-Cached.
func TestMatrixPartialCellReuse(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	small := `{"cycles":[{"synth":{"profile":"urban","seed":9,"duration_s":6}}],
		"schemes":["INOR"],"ambients":[{"ambient_c":20}],"array_sizes":[20],"max_duration_s":6}`
	big := `{"cycles":[{"synth":{"profile":"urban","seed":9,"duration_s":6}}],
		"schemes":["INOR","DNOR"],"ambients":[{"ambient_c":20},{"ambient_c":30}],"array_sizes":[20],"max_duration_s":6}`

	resp, body := postJSON(t, ts.URL+"/v1/matrix", small)
	if resp.StatusCode != 200 {
		t.Fatalf("small matrix: %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Matrix-Cells-Cached"); got != "0" {
		t.Fatalf("fresh small matrix reused %s cells", got)
	}

	resp, body = postJSON(t, ts.URL+"/v1/matrix", big)
	if resp.StatusCode != 200 {
		t.Fatalf("big matrix: %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("big matrix X-Cache = %q, want miss (different spec)", got)
	}
	// The big grid is 1×2×2×1 = 4 cells; exactly the small grid's one
	// cell overlaps.
	if got := resp.Header.Get("X-Matrix-Cells-Cached"); got != "1" {
		t.Fatalf("big matrix reused %s cells from cache, want 1", got)
	}
	var env struct {
		Cells []json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Cells) != 4 {
		t.Fatalf("big matrix has %d cells, want 4", len(env.Cells))
	}
}

// TestMatrixStream drives the SSE path: start, one cell event per
// cell, then a summary byte-identical to what the non-streaming path
// now serves from the envelope cache the stream back-filled.
func TestMatrixStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := `{"cycles":[{"synth":{"profile":"urban","seed":9,"duration_s":6}}],
		"schemes":["INOR","DNOR"],"ambients":[{"ambient_c":20}],"array_sizes":[20],
		"max_duration_s":6,"stream":true}`
	resp, err := http.Post(ts.URL+"/v1/matrix", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("stream Content-Type %q", ct)
	}
	events := map[string]int{}
	var summary []byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	current := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			current = strings.TrimPrefix(line, "event: ")
			events[current]++
		case strings.HasPrefix(line, "data: ") && current == "summary":
			summary = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events["start"] != 1 || events["summary"] != 1 || events["error"] != 0 {
		t.Fatalf("event counts %v", events)
	}
	if events["cell"] != 2 {
		t.Fatalf("saw %d cell events, want 2", events["cell"])
	}

	// The stream back-fills the envelope cache: a plain resubmission is
	// a hit and its payload equals the stream's summary event.
	plain := strings.Replace(spec, `,"stream":true`, "", 1)
	resp2, body := postJSON(t, ts.URL+"/v1/matrix", plain)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("post-stream submission X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(bytes.TrimSpace(summary), bytes.TrimSpace(body)) {
		t.Fatal("stream summary differs from the cached envelope")
	}
}

// TestMatrixAdmission: the server refuses matrices over its bounds
// with a 400 naming the limit, before any simulation starts.
func TestMatrixAdmission(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxMatrixCells: 3, MaxModules: 50, MaxTicksPerJob: 1000})
	cases := []struct {
		name, body, wantFrag string
	}{
		{"invalid spec", `{"cycles":[{"name":"autobahn"}]}`, "invalid matrix spec"},
		{"too many cells", `{"cycles":[{"name":"nedc"}],"schemes":["INOR","DNOR"],"array_sizes":[20,30],"max_duration_s":6}`, "over the server's 3 limit"},
		{"modules", `{"cycles":[{"name":"nedc"}],"schemes":["INOR"],"array_sizes":[60],"max_duration_s":6}`, "module limit"},
		{"ticks", `{"cycles":[{"name":"nedc"}],"schemes":["INOR"],"array_sizes":[20]}`, "control periods"},
		{"unknown field", `{"cycles":[{"name":"nedc"}],"bogus":1}`, "bogus"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/matrix", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), tc.wantFrag) {
				t.Fatalf("error %s does not mention %q", body, tc.wantFrag)
			}
		})
	}
}

// TestMatrixMetrics: matrix traffic shows up in /v1/stats and the
// Prometheus surface.
func TestMatrixMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	spec := `{"cycles":[{"synth":{"profile":"urban","seed":9,"duration_s":6}}],
		"schemes":["INOR"],"ambients":[{"ambient_c":20}],"array_sizes":[20],"max_duration_s":6}`
	if resp, body := postJSON(t, ts.URL+"/v1/matrix", spec); resp.StatusCode != 200 {
		t.Fatalf("%d: %s", resp.StatusCode, body)
	}
	st := s.Stats()
	if st.Matrices != 1 {
		t.Fatalf("stats count %d matrices, want 1", st.Matrices)
	}
	if st.MatrixCells != 1 {
		t.Fatalf("stats count %d matrix cells, want 1", st.MatrixCells)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b := new(bytes.Buffer)
	_, err = b.ReadFrom(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		fmt.Sprintf("tegserve_matrices_total %d", 1),
		fmt.Sprintf("tegserve_matrix_cells_total %d", 1),
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("metrics output missing %q", want)
		}
	}
}
