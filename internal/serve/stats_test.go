package serve

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestStatsSnapshot drives one computed run and one cached repeat
// through the handler and checks the Stats snapshot agrees with the
// /metrics counters: two runs accepted, one computation, one cache hit,
// ticks flowing.
func TestStatsSnapshot(t *testing.T) {
	s := New(Config{})
	body := `{"cycle":"nedc","scheme":"baseline","duration_s":30}`

	for i := 0; i < 2; i++ {
		req := httptest.NewRequest("POST", "/v1/runs", strings.NewReader(body))
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, req)
		if rr.Code != 200 {
			t.Fatalf("request %d: status %d: %s", i, rr.Code, rr.Body.String())
		}
	}

	st := s.Stats()
	if st.Runs != 2 {
		t.Errorf("Runs = %d, want 2", st.Runs)
	}
	if st.Computations != 1 {
		t.Errorf("Computations = %d, want 1 (second request must be a cache hit)", st.Computations)
	}
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if st.CacheHitRatio != 0.5 {
		t.Errorf("CacheHitRatio = %g, want 0.5", st.CacheHitRatio)
	}
	if st.CacheEntries != 1 {
		t.Errorf("CacheEntries = %d, want 1", st.CacheEntries)
	}
	if st.Ticks <= 0 {
		t.Errorf("Ticks = %d, want > 0", st.Ticks)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("UptimeSeconds = %g, want > 0", st.UptimeSeconds)
	}
	if st.QueueDepth != 0 || st.ActiveSessions != 0 {
		t.Errorf("idle server reports depth %d, active %d", st.QueueDepth, st.ActiveSessions)
	}
}
