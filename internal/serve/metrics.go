// Observability: /healthz for load-balancer liveness (flips to 503
// while draining so traffic moves away before the listener closes) and
// /metrics in the Prometheus text exposition format — queue depth,
// cache hit rate, active sessions and tick throughput, the four
// numbers that say whether the service is keeping up.

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"tegrecon/internal/obs"
	"tegrecon/internal/sim"
)

// metrics holds the server's monotonic counters and latency
// histograms. Gauges (queue depth, active sessions, cache entries) are
// read live from their owners.
type metrics struct {
	start            time.Time
	ticks            atomic.Int64 // control periods simulated, all jobs
	computations     atomic.Int64 // jobs actually executed (cache/coalesce misses)
	runs             atomic.Int64 // POST /v1/runs accepted
	sweeps           atomic.Int64 // POST /v1/sweeps accepted
	matrices         atomic.Int64 // POST /v1/matrix accepted
	matrixCells      atomic.Int64 // matrix cells actually simulated (not recalled from cache)
	coalesced        atomic.Int64 // requests served by waiting on an identical in-flight job
	streams          atomic.Int64 // live SSE streams (gauge)
	jobs             atomic.Int64 // jobs whose execution time landed in jobNanos
	jobNanos         atomic.Int64 // cumulative job execution time
	sessionsCreated  atomic.Int64 // twin sessions opened (fresh and restored)
	sessionsRestored atomic.Int64 // twin sessions opened from a checkpoint
	sessionsEvicted  atomic.Int64 // twin sessions evicted past the idle TTL
	sessionSteps     atomic.Int64 // control periods applied through /v1/sessions/{id}/step
	checkpoints      atomic.Int64 // checkpoint payloads served
	shardsDispatched atomic.Int64 // shards posted to worker peers (coordinator)
	shardRetries     atomic.Int64 // failed shards recomputed locally (coordinator)
	shardsServed     atomic.Int64 // POST /v1/shards accepted (worker)

	// Latency distributions. The counters above say how much; these say
	// how long — per-route request latency, job execution time (the p90
	// feeding Retry-After), and SSE stream lifetimes.
	httpHist   *obs.HistogramVec // http_request_seconds{route,status}
	jobHist    *obs.Histogram    // job_seconds
	streamHist *obs.Histogram    // stream_seconds
}

func newMetrics() metrics {
	return metrics{
		start: time.Now(),
		httpHist: obs.NewHistogramVec("http_request_seconds",
			"HTTP request latency by route and status.",
			[]string{"route", "status"}, obs.DefBuckets()),
		jobHist:    obs.NewHistogram(obs.DefBuckets()),
		streamHist: obs.NewHistogram(obs.DefBuckets()),
	}
}

// observeJob folds one job's execution time into the job-latency
// histogram whose p90 the 503 Retry-After derivation reads.
func (m *metrics) observeJob(d time.Duration) {
	m.jobNanos.Add(int64(d))
	m.jobs.Add(1)
	m.jobHist.ObserveDuration(d)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	b := obs.BuildInfo()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":          status,
		"uptime_s":        time.Since(s.met.start).Seconds(),
		"active_sessions": s.q.active(),
		"queue_depth":     s.q.depth(),
		"cache_entries":   s.cache.len(),
		"twin_sessions":   s.sessions.len(),
		"go_version":      b.GoVersion,
		"revision":        b.ShortRevision(),
		"modified":        b.Modified,
	})
}

// Stats is a point-in-time snapshot of the server's observable state —
// the same numbers /metrics exposes, in struct form for embedding
// consumers (the tegbench perf harness reads cache hits and simulated
// ticks through it instead of scraping the Prometheus text).
type Stats struct {
	UptimeSeconds  float64 // seconds since the server started
	QueueDepth     int64   // jobs waiting for an execution slot
	ActiveSessions int     // jobs holding execution slots
	ActiveStreams  int64   // live SSE streams
	Runs           int64   // run requests accepted
	Sweeps         int64   // sweep requests accepted
	Matrices       int64   // scenario-matrix requests accepted
	MatrixCells    int64   // matrix cells actually simulated (cache misses)
	Computations   int64   // jobs actually simulated
	Coalesced      int64   // requests that shared an in-flight computation
	CacheHits      int64   // result cache hits
	CacheMisses    int64   // result cache misses
	CacheEntries   int     // results currently cached
	CacheBytes     int64   // resident cached payload bytes
	Ticks          int64   // control periods simulated across all jobs
	TicksPerSecond float64 // lifetime mean simulated ticks per wall-clock second
	CacheHitRatio  float64 // lifetime hit ratio, 0 when no lookups yet

	DiskHits         int64 // cache hits answered by the disk tier
	ShardsDispatched int64 // shards posted to worker peers (coordinator mode)
	ShardRetries     int64 // failed shards recomputed locally
	ShardsServed     int64 // shard requests accepted from a coordinator
	StoreObjects     int64 // payloads resident in the disk store (0 when no store)
	StoreBytes       int64 // resident disk-store payload bytes
	StorePuts        int64 // payloads written to the disk store
	StoreEvictions   int64 // disk-store objects evicted past the byte budget

	TwinSessions     int   // twin sessions currently open
	SessionsCreated  int64 // twin sessions opened (fresh and restored)
	SessionsRestored int64 // twin sessions opened from a checkpoint
	SessionsEvicted  int64 // twin sessions evicted past the idle TTL
	SessionSteps     int64 // control periods applied through session steps
	Checkpoints      int64 // checkpoint payloads served

	// Phases is the service-wide sampled phase-timing aggregate (see
	// GET /v1/debug/phases); zero when phase sampling is disabled.
	Phases sim.PhaseTimings
}

// Stats snapshots the server's counters. The counters are independent
// atomics, so the snapshot is per-field consistent, not a transaction.
func (s *Server) Stats() Stats {
	uptime := time.Since(s.met.start).Seconds()
	hits, misses := s.cache.hits.Load(), s.cache.misses.Load()
	st := Stats{
		UptimeSeconds:  uptime,
		QueueDepth:     s.q.depth(),
		ActiveSessions: s.q.active(),
		ActiveStreams:  s.met.streams.Load(),
		Runs:           s.met.runs.Load(),
		Sweeps:         s.met.sweeps.Load(),
		Matrices:       s.met.matrices.Load(),
		MatrixCells:    s.met.matrixCells.Load(),
		Computations:   s.met.computations.Load(),
		Coalesced:      s.met.coalesced.Load(),
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheEntries:   s.cache.len(),
		CacheBytes:     s.cache.size(),
		Ticks:          s.met.ticks.Load(),

		DiskHits:         s.cache.diskHits.Load(),
		ShardsDispatched: s.met.shardsDispatched.Load(),
		ShardRetries:     s.met.shardRetries.Load(),
		ShardsServed:     s.met.shardsServed.Load(),

		TwinSessions:     s.sessions.len(),
		SessionsCreated:  s.met.sessionsCreated.Load(),
		SessionsRestored: s.met.sessionsRestored.Load(),
		SessionsEvicted:  s.met.sessionsEvicted.Load(),
		SessionSteps:     s.met.sessionSteps.Load(),
		Checkpoints:      s.met.checkpoints.Load(),

		Phases: s.phases.snapshot(),
	}
	if s.cfg.Store != nil {
		ss := s.cfg.Store.Snapshot()
		st.StoreObjects = ss.Objects
		st.StoreBytes = ss.Bytes
		st.StorePuts = ss.Puts
		st.StoreEvictions = ss.Evictions
	}
	if hits+misses > 0 {
		st.CacheHitRatio = float64(hits) / float64(hits+misses)
	}
	if uptime > 0 {
		st.TicksPerSecond = float64(st.Ticks) / uptime
	}
	return st
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// One Stats snapshot feeds every row: the counters are independent
	// atomics, so reading them twice would let derived values (the hit
	// ratio, ticks/sec) disagree with the totals printed next to them.
	// Only the static bounds are read from the config directly.
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	type row struct {
		name, help, typ string
		value           any
	}
	rows := []row{
		{"tegserve_uptime_seconds", "Seconds since the server started.", "gauge", st.UptimeSeconds},
		{"tegserve_queue_depth", "Jobs waiting for an execution slot.", "gauge", st.QueueDepth},
		{"tegserve_queue_capacity", "Maximum jobs allowed to wait for a slot (queue_depth's bound).", "gauge", s.cfg.MaxQueued},
		{"tegserve_max_concurrent", "Maximum simultaneously executing jobs.", "gauge", cap(s.q.slots)},
		{"tegserve_active_sessions", "Jobs holding execution slots right now.", "gauge", st.ActiveSessions},
		{"tegserve_active_streams", "Live SSE run streams.", "gauge", st.ActiveStreams},
		{"tegserve_runs_total", "Run requests accepted.", "counter", st.Runs},
		{"tegserve_sweeps_total", "Sweep requests accepted.", "counter", st.Sweeps},
		{"tegserve_matrices_total", "Scenario-matrix requests accepted.", "counter", st.Matrices},
		{"tegserve_matrix_cells_total", "Matrix cells actually simulated (not recalled from the cell cache).", "counter", st.MatrixCells},
		{"tegserve_computations_total", "Jobs actually simulated (not served from cache or coalesced).", "counter", st.Computations},
		{"tegserve_coalesced_total", "Requests that shared an identical in-flight computation.", "counter", st.Coalesced},
		{"tegserve_cache_hits_total", "Result cache hits.", "counter", st.CacheHits},
		{"tegserve_cache_misses_total", "Result cache misses.", "counter", st.CacheMisses},
		{"tegserve_cache_entries", "Results currently cached.", "gauge", st.CacheEntries},
		{"tegserve_cache_bytes", "Resident bytes of cached result payloads.", "gauge", st.CacheBytes},
		{"tegserve_cache_hit_ratio", "Lifetime cache hit ratio.", "gauge", st.CacheHitRatio},
		{"tegserve_cache_disk_hits_total", "Cache hits answered by the disk store tier.", "counter", st.DiskHits},
		{"tegserve_store_objects", "Payloads resident in the disk store.", "gauge", st.StoreObjects},
		{"tegserve_store_bytes", "Resident disk-store payload bytes.", "gauge", st.StoreBytes},
		{"tegserve_store_puts_total", "Payloads written to the disk store.", "counter", st.StorePuts},
		{"tegserve_store_evictions_total", "Disk-store objects evicted past the byte budget.", "counter", st.StoreEvictions},
		{"tegserve_shards_dispatched_total", "Shards posted to worker peers (coordinator mode).", "counter", st.ShardsDispatched},
		{"tegserve_shard_retries_total", "Failed shards recomputed locally.", "counter", st.ShardRetries},
		{"tegserve_shards_served_total", "Shard requests accepted from a coordinator.", "counter", st.ShardsServed},
		{"tegserve_ticks_total", "Control periods simulated across all jobs.", "counter", st.Ticks},
		{"tegserve_ticks_per_second", "Lifetime mean simulated control periods per wall-clock second.", "gauge", st.TicksPerSecond},
		{"tegserve_twin_sessions", "Digital-twin sessions currently open.", "gauge", st.TwinSessions},
		{"tegserve_twin_sessions_max", "Maximum simultaneously open twin sessions.", "gauge", s.cfg.MaxSessions},
		{"tegserve_twin_sessions_created_total", "Twin sessions opened (fresh and restored).", "counter", st.SessionsCreated},
		{"tegserve_twin_sessions_restored_total", "Twin sessions opened from a checkpoint.", "counter", st.SessionsRestored},
		{"tegserve_twin_sessions_evicted_total", "Twin sessions evicted past the idle TTL.", "counter", st.SessionsEvicted},
		{"tegserve_twin_session_steps_total", "Control periods applied through session steps.", "counter", st.SessionSteps},
		{"tegserve_twin_checkpoints_total", "Checkpoint payloads served.", "counter", st.Checkpoints},
	}
	for _, m := range rows {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		switch v := m.value.(type) {
		case float64:
			fmt.Fprintf(w, "%s %g\n", m.name, v)
		default:
			fmt.Fprintf(w, "%s %d\n", m.name, v)
		}
	}

	// Build identity: the constant-1 info-metric idiom, so a fleet query
	// can group instances by the revision they run.
	b := obs.BuildInfo()
	fmt.Fprintf(w, "# HELP tegserve_build_info Build identity of the running binary (constant 1).\n# TYPE tegserve_build_info gauge\n")
	fmt.Fprintf(w, "tegserve_build_info{go_version=%q,revision=%q,modified=%q} 1\n",
		b.GoVersion, b.ShortRevision(), strconv.FormatBool(b.Modified))

	// Sampled tick-phase timings (GET /v1/debug/phases in scrapeable
	// form): which of temps/sense/decide/act the fleet's workload spends
	// its simulated control periods in.
	fmt.Fprintf(w, "# HELP tegserve_phase_samples_total Fully phase-timed control periods (1-in-N sampling).\n# TYPE tegserve_phase_samples_total counter\n")
	fmt.Fprintf(w, "tegserve_phase_samples_total %d\n", st.Phases.Samples)
	fmt.Fprintf(w, "# HELP tegserve_phase_seconds_total Sampled wall-clock seconds per tick phase.\n# TYPE tegserve_phase_seconds_total counter\n")
	for _, p := range []struct {
		phase string
		ns    int64
	}{
		{"temps", st.Phases.TempsNs},
		{"sense", st.Phases.SenseNs},
		{"decide", st.Phases.DecideNs},
		{"act", st.Phases.ActNs},
	} {
		fmt.Fprintf(w, "tegserve_phase_seconds_total{phase=%q} %g\n", p.phase, float64(p.ns)/1e9)
	}

	s.met.httpHist.WritePrometheus(w)
	s.met.jobHist.WritePrometheus(w, "job_seconds", "Job execution time (runs, sweeps, matrices, restores, step batches).")
	s.met.streamHist.WritePrometheus(w, "stream_seconds", "SSE stream lifetime from accept to close.")
}
