// Observability: /healthz for load-balancer liveness (flips to 503
// while draining so traffic moves away before the listener closes) and
// /metrics in the Prometheus text exposition format — queue depth,
// cache hit rate, active sessions and tick throughput, the four
// numbers that say whether the service is keeping up.

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// metrics holds the server's monotonic counters. Gauges (queue depth,
// active sessions, cache entries) are read live from their owners.
type metrics struct {
	start        time.Time
	ticks        atomic.Int64 // control periods simulated, all jobs
	computations atomic.Int64 // jobs actually executed (cache/coalesce misses)
	runs         atomic.Int64 // POST /v1/runs accepted
	sweeps       atomic.Int64 // POST /v1/sweeps accepted
	coalesced    atomic.Int64 // requests served by waiting on an identical in-flight job
	streams      atomic.Int64 // live SSE streams (gauge)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":          status,
		"uptime_s":        time.Since(s.met.start).Seconds(),
		"active_sessions": s.q.active(),
		"queue_depth":     s.q.depth(),
		"cache_entries":   s.cache.len(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(s.met.start).Seconds()
	hits, misses := s.cache.hits.Load(), s.cache.misses.Load()
	hitRatio := 0.0
	if hits+misses > 0 {
		hitRatio = float64(hits) / float64(hits+misses)
	}
	ticks := s.met.ticks.Load()
	ticksPerSec := 0.0
	if uptime > 0 {
		ticksPerSec = float64(ticks) / uptime
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	type row struct {
		name, help, typ string
		value           any
	}
	rows := []row{
		{"tegserve_uptime_seconds", "Seconds since the server started.", "gauge", uptime},
		{"tegserve_queue_depth", "Jobs waiting for an execution slot.", "gauge", s.q.depth()},
		{"tegserve_queue_capacity", "Maximum jobs allowed to wait for a slot (queue_depth's bound).", "gauge", s.cfg.MaxQueued},
		{"tegserve_max_concurrent", "Maximum simultaneously executing jobs.", "gauge", cap(s.q.slots)},
		{"tegserve_active_sessions", "Jobs holding execution slots right now.", "gauge", s.q.active()},
		{"tegserve_active_streams", "Live SSE run streams.", "gauge", s.met.streams.Load()},
		{"tegserve_runs_total", "Run requests accepted.", "counter", s.met.runs.Load()},
		{"tegserve_sweeps_total", "Sweep requests accepted.", "counter", s.met.sweeps.Load()},
		{"tegserve_computations_total", "Jobs actually simulated (not served from cache or coalesced).", "counter", s.met.computations.Load()},
		{"tegserve_coalesced_total", "Requests that shared an identical in-flight computation.", "counter", s.met.coalesced.Load()},
		{"tegserve_cache_hits_total", "Result cache hits.", "counter", hits},
		{"tegserve_cache_misses_total", "Result cache misses.", "counter", misses},
		{"tegserve_cache_entries", "Results currently cached.", "gauge", s.cache.len()},
		{"tegserve_cache_bytes", "Resident bytes of cached result payloads.", "gauge", s.cache.size()},
		{"tegserve_cache_hit_ratio", "Lifetime cache hit ratio.", "gauge", hitRatio},
		{"tegserve_ticks_total", "Control periods simulated across all jobs.", "counter", ticks},
		{"tegserve_ticks_per_second", "Lifetime mean simulated control periods per wall-clock second.", "gauge", ticksPerSec},
	}
	for _, m := range rows {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		switch v := m.value.(type) {
		case float64:
			fmt.Fprintf(w, "%s %g\n", m.name, v)
		default:
			fmt.Fprintf(w, "%s %d\n", m.name, v)
		}
	}
}
