package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2, 1<<20, nil)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // touch a → b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", []byte("C")) // evicts b
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction despite being least recently used")
	}
	for key, want := range map[string]string{"a": "A", "c": "C"} {
		got, ok := c.get(key)
		if !ok || !bytes.Equal(got, []byte(want)) {
			t.Fatalf("get(%s) = %q, %v", key, got, ok)
		}
	}
	// Re-putting an existing key updates in place, no eviction.
	c.put("a", []byte("A2"))
	if got, _ := c.get("a"); !bytes.Equal(got, []byte("A2")) {
		t.Fatalf("update in place failed: %q", got)
	}
	if c.len() != 2 {
		t.Fatalf("len after update = %d", c.len())
	}
}

func TestCacheCounters(t *testing.T) {
	c := newCache(4, 1<<20, nil)
	c.get("nope")
	c.put("k", []byte("v"))
	c.get("k")
	c.get("k")
	if h, m := c.hits.Load(), c.misses.Load(); h != 2 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", h, m)
	}
}

// TestCacheByteBudget proves the LRU is bounded by resident bytes as
// well as entries: big payloads evict from the tail, and a payload
// over the whole budget is never stored.
func TestCacheByteBudget(t *testing.T) {
	c := newCache(100, 10, nil) // 100 entries but only 10 bytes
	c.put("a", []byte("aaaa"))
	c.put("b", []byte("bbbb"))
	if c.size() != 8 {
		t.Fatalf("size = %d, want 8", c.size())
	}
	c.put("c", []byte("cccc")) // 12 bytes resident → evict a
	if _, ok := c.get("a"); ok {
		t.Fatal("a survived the byte budget")
	}
	if c.size() != 8 || c.len() != 2 {
		t.Fatalf("size=%d len=%d after eviction", c.size(), c.len())
	}
	// Updating an entry in place adjusts the byte accounting.
	c.put("b", []byte("bb"))
	if c.size() != 6 {
		t.Fatalf("size after shrink = %d, want 6", c.size())
	}
	// A payload larger than the entire budget is refused outright.
	c.put("huge", bytes.Repeat([]byte("x"), 11))
	if _, ok := c.get("huge"); ok {
		t.Fatal("over-budget payload was cached")
	}
	if c.len() != 2 {
		t.Fatalf("over-budget put disturbed the cache: len=%d", c.len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newCache(0, 1<<20, nil)
	c.put("k", []byte("v"))
	if _, ok := c.get("k"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

// TestFlightGroupCoalesces proves N concurrent misses on one key run
// the computation once and share the payload.
func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	var computations atomic.Int64
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	payloads := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err, _ := g.do(context.Background(), "key", func() ([]byte, error) {
				<-gate // hold the flight open until all callers joined
				computations.Add(1)
				return []byte("payload"), nil
			})
			if err != nil {
				t.Error(err)
			}
			payloads[i] = b
		}(i)
	}
	// Let callers pile onto the in-flight computation, then release.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := computations.Load(); got != 1 {
		t.Fatalf("computations = %d, want 1", got)
	}
	for i, b := range payloads {
		if !bytes.Equal(b, []byte("payload")) {
			t.Fatalf("caller %d got %q", i, b)
		}
	}
	// Errors propagate to all callers and are not sticky.
	wantErr := errors.New("boom")
	_, err, _ := g.do(context.Background(), "key", func() ([]byte, error) { return nil, wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	b, err, _ := g.do(context.Background(), "key", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || !bytes.Equal(b, []byte("ok")) {
		t.Fatalf("flight after error: %q, %v", b, err)
	}
}

// TestFlightFollowerContext: a follower whose own request dies must
// unblock immediately with its context error, while the leader's
// computation keeps running for the others.
func TestFlightFollowerContext(t *testing.T) {
	var g flightGroup
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		g.do(context.Background(), "key", func() ([]byte, error) {
			<-gate
			return []byte("payload"), nil
		})
	}()
	// Wait until the leader's flight is registered.
	for {
		g.mu.Lock()
		_, inflight := g.inflight["key"]
		g.mu.Unlock()
		if inflight {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, shared := g.do(ctx, "key", func() ([]byte, error) {
		t.Error("follower ran the computation")
		return nil, nil
	})
	if !shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned follower: shared=%v err=%v", shared, err)
	}
	close(gate)
	<-leaderDone
}

func TestQueueBounds(t *testing.T) {
	q := newQueue(1, 1)
	if err := q.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if q.active() != 1 {
		t.Fatalf("active = %d", q.active())
	}
	// One waiter is admitted and blocks...
	waited := make(chan error, 1)
	go func() {
		waited <- q.acquire(context.Background())
	}()
	// ...wait until it is actually counted, then the next is shed.
	deadline := time.Now().Add(2 * time.Second)
	for q.depth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if err := q.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("over-capacity acquire: %v, want errQueueFull", err)
	}
	q.release()
	if err := <-waited; err != nil {
		t.Fatal(err)
	}
	q.release()

	// A canceled context aborts a blocked acquire.
	if err := q.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := q.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire: %v", err)
	}
	q.release()
}

func TestCanonicalKeys(t *testing.T) {
	s := New(Config{})
	base := RunRequest{Cycle: "wltc", Scheme: "dnor", DurationS: 10}
	p1, herr := s.normalizeRun(base)
	if herr != nil {
		t.Fatal(herr)
	}
	// Same request, different surface spelling: scheme case and an
	// explicit full-length duration normalize away.
	alt := RunRequest{Cycle: "WLTC", Scheme: "DNOR", DurationS: 10}
	p2, herr := s.normalizeRun(alt)
	if herr != nil {
		t.Fatal(herr)
	}
	if runKey(p1) != runKey(p2) {
		t.Fatal("equivalent requests hash differently")
	}
	full := RunRequest{Cycle: "wltc", Scheme: "dnor"}
	overlong := RunRequest{Cycle: "wltc", Scheme: "dnor", DurationS: 1e6}
	pf, _ := s.normalizeRun(full)
	po, _ := s.normalizeRun(overlong)
	if runKey(pf) != runKey(po) {
		t.Fatal("full-cycle and past-the-end durations hash differently")
	}
	// Every physically meaningful field changes the key.
	seed := int64(8)
	noise := 0.2
	det := false
	variants := []RunRequest{
		{Cycle: "nedc", Scheme: "dnor", DurationS: 10},
		{Cycle: "wltc", Scheme: "inor", DurationS: 10},
		{Cycle: "wltc", Scheme: "dnor", DurationS: 11},
		{Cycle: "wltc", Scheme: "dnor", DurationS: 10, TickS: 1},
		{Cycle: "wltc", Scheme: "dnor", DurationS: 10, Seed: &seed},
		{Cycle: "wltc", Scheme: "dnor", DurationS: 10, SensorNoiseC: &noise},
		{Cycle: "wltc", Scheme: "dnor", DurationS: 10, Modules: 50},
		{Cycle: "wltc", Scheme: "dnor", DurationS: 10, HorizonTicks: 8},
		{Cycle: "wltc", Scheme: "dnor", DurationS: 10, Battery: true},
		{Cycle: "wltc", Scheme: "dnor", DurationS: 10, DeterministicRuntime: &det},
		{Cycle: "wltc", Scheme: "dnor", DurationS: 10, Ticks: true},
	}
	seen := map[string]int{runKey(p1): -1}
	for i, req := range variants {
		p, herr := s.normalizeRun(req)
		if herr != nil {
			t.Fatalf("variant %d: %v", i, herr)
		}
		k := runKey(p)
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with %d", i, prev)
		}
		seen[k] = i
	}

	// Sweep keys: order of cycles/schemes is part of the identity.
	sw1, herr := s.normalizeSweep(SweepRequest{Cycles: []string{"nedc", "wltc"}, Schemes: []string{"inor", "dnor"}, MaxDurationS: 10})
	if herr != nil {
		t.Fatal(herr)
	}
	sw2, _ := s.normalizeSweep(SweepRequest{Cycles: []string{"wltc", "nedc"}, Schemes: []string{"inor", "dnor"}, MaxDurationS: 10})
	if sweepKey(sw1) == sweepKey(sw2) {
		t.Fatal("cycle order did not change the sweep key")
	}
	sw3, _ := s.normalizeSweep(SweepRequest{Cycles: []string{"nedc", "wltc"}, Schemes: []string{"INOR", "DNOR"}, MaxDurationS: 10})
	if sweepKey(sw1) != sweepKey(sw3) {
		t.Fatal("scheme name case changed the sweep key")
	}
	// A cap past every schedule end is physically the same sweep as no
	// cap; a cap between two cycle lengths is not.
	swFull, _ := s.normalizeSweep(SweepRequest{Cycles: []string{"nedc", "wltc"}, Schemes: []string{"inor"}})
	swHuge, _ := s.normalizeSweep(SweepRequest{Cycles: []string{"nedc", "wltc"}, Schemes: []string{"inor"}, MaxDurationS: 1e6})
	if sweepKey(swFull) != sweepKey(swHuge) {
		t.Fatal("past-the-end sweep cap hashed differently from no cap")
	}
	swMid, _ := s.normalizeSweep(SweepRequest{Cycles: []string{"nedc", "wltc"}, Schemes: []string{"inor"}, MaxDurationS: 1500})
	if sweepKey(swMid) == sweepKey(swFull) {
		t.Fatal("a cap that truncates only the wltc did not change the key")
	}
}

func TestNormalizeRejects(t *testing.T) {
	s := New(Config{MaxModules: 100, MaxTicksPerJob: 1000})
	cases := []RunRequest{
		{},                              // no cycle
		{Cycle: "wltc"},                 // no scheme
		{Cycle: "nope", Scheme: "dnor"}, // unknown cycle
		{Cycle: "wltc", Scheme: "nope"}, // unknown scheme
		{Cycle: "wltc", Scheme: "dnor", DurationS: -1},
		{Cycle: "wltc", Scheme: "dnor", TickS: -0.5},
		{Cycle: "wltc", Scheme: "dnor", Modules: 101},
		{Cycle: "wltc", Scheme: "dnor", HorizonTicks: -1},
		{Cycle: "wltc", Scheme: "dnor"},                              // full 1800 s / 0.5 s = 3601 ticks > 1000
		{Cycle: "wltc", Scheme: "dnor", DurationS: 0.1},              // shorter than one control period
		{Cycle: "wltc", Scheme: "dnor", DurationS: 10, TickS: 1e308}, // would overflow energy accounting
	}
	for i, req := range cases {
		if _, herr := s.normalizeRun(req); herr == nil {
			t.Errorf("case %d (%+v) normalized", i, req)
		} else if herr.status != 400 {
			t.Errorf("case %d status = %d", i, herr.status)
		}
	}
	neg := -0.1
	if _, herr := s.normalizeSweep(SweepRequest{SensorNoiseC: &neg}); herr == nil {
		t.Error("negative noise sweep normalized")
	}
	if _, herr := s.normalizeSweep(SweepRequest{Cycles: []string{"nope"}}); herr == nil {
		t.Error("unknown sweep cycle normalized")
	}
	if _, herr := s.normalizeSweep(SweepRequest{Schemes: []string{"nope"}}); herr == nil {
		t.Error("unknown sweep scheme normalized")
	}
	if _, herr := s.normalizeSweep(SweepRequest{Cycles: []string{"delivery"}, MaxDurationS: 0.2}); herr == nil {
		t.Error("sub-period sweep cap normalized")
	}
	if _, herr := s.normalizeSweep(SweepRequest{}); herr == nil {
		t.Error("full default sweep fit under a 1000-tick budget")
	}
}

func TestSSERoundTrip(t *testing.T) {
	var buf bytes.Buffer
	// Encode directly against the buffer (flusher-free path is only in
	// newEventWriter; the writer itself just needs io.Writer + flush).
	ew := &eventWriter{w: &buf, fl: nopFlusher{}}
	if err := ew.event("tick", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := ew.event("summary", []byte("line1\nline2")); err != nil {
		t.Fatal(err)
	}
	var got []Event
	if err := DecodeEvents(&buf, func(ev Event) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "tick" || string(got[0].Data) != `{"a":1}` {
		t.Fatalf("decoded %+v", got)
	}
	if got[1].Name != "summary" || string(got[1].Data) != "line1\nline2" {
		t.Fatalf("multi-line event decoded as %q", got[1].Data)
	}

	// ErrStopDecoding ends the loop cleanly.
	buf.Reset()
	ew.event("tick", []byte("1"))
	ew.event("tick", []byte("2"))
	n := 0
	if err := DecodeEvents(&buf, func(Event) error { n++; return ErrStopDecoding }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("decoded %d events after stop", n)
	}
}

type nopFlusher struct{}

func (nopFlusher) Flush() {}

func ExampleDecodeEvents() {
	stream := "event: tick\ndata: {\"t\":0}\n\nevent: summary\ndata: done\n\n"
	DecodeEvents(strings.NewReader(stream), func(ev Event) error {
		fmt.Printf("%s: %s\n", ev.Name, ev.Data)
		return nil
	})
	// Output:
	// tick: {"t":0}
	// summary: done
}

// TestCachePutOversizedRejected pins the oversize admission rule: a
// payload larger than the whole byte budget must be refused before it
// touches the LRU — the failure mode being pinned is an oversized put
// first evicting every resident entry and then landing anyway, leaving
// the cache both empty of useful results and over budget.
func TestCachePutOversizedRejected(t *testing.T) {
	c := newCache(100, 10, nil)
	c.put("a", []byte("aaa"))
	c.put("b", []byte("bbb"))
	c.put("huge", bytes.Repeat([]byte("x"), 11))
	if _, ok := c.peek("huge"); ok {
		t.Fatal("payload over the whole byte budget was admitted")
	}
	if c.len() != 2 || c.size() != 6 {
		t.Fatalf("oversized put disturbed residents: len=%d size=%d, want 2/6", c.len(), c.size())
	}
	for _, key := range []string{"a", "b"} {
		if _, ok := c.peek(key); !ok {
			t.Fatalf("resident %q was evicted by a rejected oversized put", key)
		}
	}
	// Exactly at the budget is admissible (and evicts both residents).
	c.put("fit", bytes.Repeat([]byte("y"), 10))
	if _, ok := c.peek("fit"); !ok {
		t.Fatal("payload exactly at the byte budget was refused")
	}
	if c.size() != 10 {
		t.Fatalf("size = %d after at-budget put, want 10", c.size())
	}
}

// TestCacheDiskTier proves the two-tier contract: puts write through
// to the disk store, a fresh cache on the same store answers from disk
// (promoting into memory and counting a client-visible hit), and peek
// and has see the disk tier without promotion.
func TestCacheDiskTier(t *testing.T) {
	st := openTestStore(t)
	key := testCellHash("payload")
	c1 := newCache(4, 1<<20, st)
	c1.put(key, []byte("persisted"))

	// A second cache on the same store models a restarted process:
	// empty memory, warm disk.
	c2 := newCache(4, 1<<20, st)
	got, ok := c2.get(key)
	if !ok || string(got) != "persisted" {
		t.Fatalf("get after restart = %q, %v", got, ok)
	}
	if h, d := c2.hits.Load(), c2.diskHits.Load(); h != 1 || d != 1 {
		t.Fatalf("hits=%d diskHits=%d, want 1/1", h, d)
	}
	// The disk hit was promoted: a repeat get answers from memory.
	if _, ok := c2.get(key); !ok {
		t.Fatal("promoted entry missing from memory")
	}
	if d := c2.diskHits.Load(); d != 1 {
		t.Fatalf("diskHits = %d after a memory hit, want still 1", d)
	}

	c3 := newCache(4, 1<<20, st)
	if !c3.has(key) {
		t.Fatal("has missed the disk tier")
	}
	if b, ok := c3.peek(key); !ok || string(b) != "persisted" {
		t.Fatalf("peek missed the disk tier: %q, %v", b, ok)
	}
	if h, m := c3.hits.Load(), c3.misses.Load(); h != 0 || m != 0 {
		t.Fatalf("peek/has touched client-facing stats: hits=%d misses=%d", h, m)
	}
}

// TestCacheDisabledMemoryStillPersists: with the memory tier disabled
// the disk tier keeps working — the configuration a thin coordinator
// in front of a shared store would run.
func TestCacheDisabledMemoryStillPersists(t *testing.T) {
	st := openTestStore(t)
	c := newCache(0, 1<<20, st)
	key := testCellHash("no-memory")
	c.put(key, []byte("v"))
	if c.len() != 0 {
		t.Fatal("disabled memory tier stored an entry")
	}
	if got, ok := c.get(key); !ok || string(got) != "v" {
		t.Fatalf("disk tier did not serve with memory disabled: %q, %v", got, ok)
	}
}
