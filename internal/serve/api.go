// Request schema and normalization for the v1 HTTP API. Every request
// is reduced to a fully-defaulted params value before anything runs:
// canonical cycle/scheme identities from the two registries, the
// paper's settings filled in for omitted knobs, and the server's
// resource bounds enforced — so the canonical cache key (canonical.go)
// and the simulation both see exactly one spelling of each request.

package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"

	"tegrecon/internal/drive"
	"tegrecon/internal/sim"
)

// RunRequest is the POST /v1/runs body: one scheme over one standard
// drive cycle. Zero values mean "paper default" (0.5 s tick, 0.1 °C
// sensor noise, seed 7, 100 modules, horizon 4, full cycle length);
// pointer fields exist where zero is itself meaningful.
type RunRequest struct {
	// Cycle names a registered standard drive cycle (GET /v1/cycles).
	Cycle string `json:"cycle"`
	// Scheme names a registered reconfiguration scheme (GET /v1/schemes).
	Scheme string `json:"scheme"`
	// DurationS caps the simulated span in seconds; 0 runs the full
	// published cycle.
	DurationS float64 `json:"duration_s,omitempty"`
	// TickS is the control period in seconds (0 → 0.5).
	TickS float64 `json:"tick_s,omitempty"`
	// Seed drives the sensor-noise RNG (nil → 7).
	Seed *int64 `json:"seed,omitempty"`
	// SensorNoiseC is the temperature sensing noise σ in °C (nil → 0.1).
	SensorNoiseC *float64 `json:"sensor_noise_c,omitempty"`
	// Modules is the TEG module count (0 → 100).
	Modules int `json:"modules,omitempty"`
	// HorizonTicks is DNOR's prediction horizon (0 → 4).
	HorizonTicks int `json:"horizon_ticks,omitempty"`
	// Battery terminates the chain in the lead-acid battery.
	Battery bool `json:"battery,omitempty"`
	// DeterministicRuntime prices switching with zero compute time,
	// making the run bit-reproducible — and therefore cacheable (nil →
	// true). Set false for the paper's measured-runtime accounting;
	// such runs always execute.
	DeterministicRuntime *bool `json:"deterministic_runtime,omitempty"`
	// Ticks includes the per-control-period records in the response
	// payload (non-streaming requests only).
	Ticks bool `json:"ticks,omitempty"`
	// Stream switches the response to Server-Sent Events: one `tick`
	// event per control period, closed by a `summary` event. Sending
	// `Accept: text/event-stream` does the same.
	Stream bool `json:"stream,omitempty"`
}

// SweepRequest is the POST /v1/sweeps body: a cycle × scheme matrix on
// the batch engine. Sweeps always run with deterministic runtime
// pricing (a worker pool makes measured runtimes meaningless), so every
// sweep is cacheable.
type SweepRequest struct {
	// Cycles selects workloads by name; empty runs every registered
	// cycle.
	Cycles []string `json:"cycles,omitempty"`
	// Schemes selects schemes by name; empty runs the whole registry.
	Schemes []string `json:"schemes,omitempty"`
	// MaxDurationS caps each cycle's span; 0 runs full schedules.
	MaxDurationS float64  `json:"max_duration_s,omitempty"`
	TickS        float64  `json:"tick_s,omitempty"`
	Seed         *int64   `json:"seed,omitempty"`
	SensorNoiseC *float64 `json:"sensor_noise_c,omitempty"`
	Modules      int      `json:"modules,omitempty"`
	HorizonTicks int      `json:"horizon_ticks,omitempty"`
}

// runParams is a RunRequest after normalization: registry identities
// resolved, every default applied, all bounds checked.
type runParams struct {
	cycle      drive.Cycle
	scheme     sim.Scheme
	durationS  float64 // effective simulated span (never 0, never past the cycle end)
	tickS      float64
	noiseC     float64
	seed       int64
	modules    int
	horizon    int
	battery    bool
	detRuntime bool
	keepTicks  bool
}

// sweepParams is a SweepRequest after normalization.
type sweepParams struct {
	cycles       []drive.Cycle
	schemes      []string // canonical registry names
	maxDurationS float64
	tickS        float64
	noiseC       float64
	seed         int64
	modules      int
	horizon      int
}

// httpError is a client-visible failure with its status code.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// defaultOpts mirrors the paper's settings the API defaults to.
var defaultOpts = sim.DefaultOptions()

// normalizeShared validates the knobs runs and sweeps share, applying
// defaults in place.
func (s *Server) normalizeShared(tickS *float64, seed **int64, noise **float64, modules, horizon *int) *httpError {
	if *tickS == 0 {
		*tickS = defaultOpts.TickSeconds
	}
	if math.IsNaN(*tickS) || math.IsInf(*tickS, 0) || *tickS <= 0 {
		return errf(http.StatusBadRequest, "tick_s %g is not a positive finite number of seconds", *tickS)
	}
	// An absurd control period is a client error, not a simulation to
	// attempt: energy integrates as power × tick_s, so near-MaxFloat64
	// periods overflow the accounting to +Inf deep in the engine.
	if *tickS > 3600 {
		return errf(http.StatusBadRequest, "tick_s %g is over the 3600 s limit", *tickS)
	}
	if *seed == nil {
		v := defaultOpts.Seed
		*seed = &v
	}
	if *noise == nil {
		v := defaultOpts.SensorNoiseC
		*noise = &v
	}
	if n := **noise; math.IsNaN(n) || math.IsInf(n, 0) || n < 0 {
		return errf(http.StatusBadRequest, "sensor_noise_c %g is not a non-negative finite °C", **noise)
	}
	if *modules == 0 {
		*modules = 100
	}
	if *modules < 1 || *modules > s.cfg.MaxModules {
		return errf(http.StatusBadRequest, "modules %d outside 1..%d", *modules, s.cfg.MaxModules)
	}
	if *horizon == 0 {
		*horizon = 4
	}
	if *horizon < 0 {
		return errf(http.StatusBadRequest, "horizon_ticks %d is negative", *horizon)
	}
	return nil
}

// effectiveDuration clamps a requested span onto the cycle: 0 or
// anything past the schedule end means the full published length —
// the same rule drive.FromSpeedSchedule applies, made explicit here so
// equivalent requests share one canonical form.
func effectiveDuration(c drive.Cycle, requested float64) float64 {
	if requested <= 0 || requested > c.DurationS {
		return c.DurationS
	}
	return requested
}

func ticksFor(durationS, tickS float64) float64 {
	return math.Floor(durationS/tickS) + 1
}

func (s *Server) normalizeRun(req RunRequest) (runParams, *httpError) {
	var p runParams
	if req.Cycle == "" {
		return p, errf(http.StatusBadRequest, "missing cycle (GET /v1/cycles lists them)")
	}
	cycle, err := drive.CycleByName(req.Cycle)
	if err != nil {
		return p, errf(http.StatusBadRequest, "%v", err)
	}
	if req.Scheme == "" {
		return p, errf(http.StatusBadRequest, "missing scheme (GET /v1/schemes lists them)")
	}
	scheme, err := sim.SchemeByName(req.Scheme)
	if err != nil {
		return p, errf(http.StatusBadRequest, "%v", err)
	}
	if math.IsNaN(req.DurationS) || math.IsInf(req.DurationS, 0) || req.DurationS < 0 {
		return p, errf(http.StatusBadRequest, "duration_s %g is not a non-negative finite number", req.DurationS)
	}
	if herr := s.normalizeShared(&req.TickS, &req.Seed, &req.SensorNoiseC, &req.Modules, &req.HorizonTicks); herr != nil {
		return p, herr
	}
	p = runParams{
		cycle:      cycle,
		scheme:     scheme,
		durationS:  effectiveDuration(cycle, req.DurationS),
		tickS:      req.TickS,
		noiseC:     *req.SensorNoiseC,
		seed:       *req.Seed,
		modules:    req.Modules,
		horizon:    req.HorizonTicks,
		battery:    req.Battery,
		detRuntime: req.DeterministicRuntime == nil || *req.DeterministicRuntime,
		keepTicks:  req.Ticks && !req.Stream,
	}
	// The trace generator needs at least two 0.5 s samples and the run
	// at least one whole control period; shorter spans would fail deep
	// in the engine as a 500 instead of the 400 they are.
	if p.durationS < 1 || p.durationS < p.tickS {
		return p, errf(http.StatusBadRequest, "duration_s %g is shorter than one control period (min 1 s and ≥ tick_s)", p.durationS)
	}
	if n := ticksFor(p.durationS, p.tickS); n > float64(s.cfg.MaxTicksPerJob) {
		return p, errf(http.StatusBadRequest, "run spans %.0f control periods, over the server's %d limit — raise tick_s or lower duration_s", n, s.cfg.MaxTicksPerJob)
	}
	return p, nil
}

func (s *Server) normalizeSweep(req SweepRequest) (sweepParams, *httpError) {
	var p sweepParams
	if math.IsNaN(req.MaxDurationS) || math.IsInf(req.MaxDurationS, 0) || req.MaxDurationS < 0 {
		return p, errf(http.StatusBadRequest, "max_duration_s %g is not a non-negative finite number", req.MaxDurationS)
	}
	if herr := s.normalizeShared(&req.TickS, &req.Seed, &req.SensorNoiseC, &req.Modules, &req.HorizonTicks); herr != nil {
		return p, herr
	}
	if len(req.Cycles) == 0 {
		p.cycles = drive.Cycles()
	} else {
		for _, name := range req.Cycles {
			c, err := drive.CycleByName(name)
			if err != nil {
				return sweepParams{}, errf(http.StatusBadRequest, "%v", err)
			}
			p.cycles = append(p.cycles, c)
		}
	}
	if len(req.Schemes) == 0 {
		p.schemes = sim.SchemeNames()
	} else {
		for _, name := range req.Schemes {
			sch, err := sim.SchemeByName(name)
			if err != nil {
				return sweepParams{}, errf(http.StatusBadRequest, "%v", err)
			}
			p.schemes = append(p.schemes, sch.Name)
		}
	}
	if req.MaxDurationS > 0 && (req.MaxDurationS < 1 || req.MaxDurationS < req.TickS) {
		return sweepParams{}, errf(http.StatusBadRequest, "max_duration_s %g is shorter than one control period (min 1 s and ≥ tick_s)", req.MaxDurationS)
	}
	p.maxDurationS = req.MaxDurationS
	p.tickS = req.TickS
	p.noiseC = *req.SensorNoiseC
	p.seed = *req.Seed
	p.modules = req.Modules
	p.horizon = req.HorizonTicks
	total := 0.0
	for _, c := range p.cycles {
		total += ticksFor(effectiveDuration(c, p.maxDurationS), p.tickS)
	}
	total *= float64(len(p.schemes))
	if total > float64(s.cfg.MaxTicksPerJob) {
		return sweepParams{}, errf(http.StatusBadRequest, "sweep spans %.0f control periods, over the server's %d limit — cap max_duration_s or select fewer cycles", total, s.cfg.MaxTicksPerJob)
	}
	return p, nil
}

// decodeJSON reads a bounded request body strictly: unknown fields are
// typos the client should hear about, not silently dropped knobs.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) *httpError {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return errf(http.StatusBadRequest, "decoding request body: %v", err)
	}
	return nil
}
