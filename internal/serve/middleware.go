// Request-scoped observability: the middleware wrapping every route.
// It assigns (or sanitizes and echoes) the X-Request-ID correlation
// header, carries the ID through the request context into the job
// queue and the simulation engine, captures the response status for
// the per-route latency histogram, recovers handler panics into logged
// 500s, and emits one structured access-log line per request.

package serve

import (
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"tegrecon/internal/obs"
)

// statusWriter captures the status code and byte count a handler
// writes, so the access log and the latency histogram can label the
// response after the fact.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

// flushWriter is statusWriter for flushable responses. The SSE event
// writer type-asserts http.Flusher on the ResponseWriter it receives,
// so the wrapper must not swallow the interface — wrap picks this
// variant whenever the underlying writer flushes.
type flushWriter struct {
	statusWriter
}

func (fw *flushWriter) Flush() {
	if fw.status == 0 {
		fw.status = http.StatusOK
	}
	fw.statusWriter.ResponseWriter.(http.Flusher).Flush()
}

// wrapWriter wraps w preserving its Flusher capability: the handler
// gets the wrapper to write through, the middleware keeps the embedded
// statusWriter to read the outcome from.
func wrapWriter(w http.ResponseWriter) (http.ResponseWriter, *statusWriter) {
	if _, ok := w.(http.Flusher); ok {
		fw := &flushWriter{statusWriter{ResponseWriter: w}}
		return fw, &fw.statusWriter
	}
	sw := &statusWriter{ResponseWriter: w}
	return sw, sw
}

// requestID resolves the request's correlation ID: a client-supplied
// X-Request-ID survives if it sanitizes to something non-empty
// (control bytes dropped, length capped), otherwise the server mints
// one. Either way the response echoes the ID, so the client can quote
// it when reporting a failure and the log line is one grep away.
func requestID(r *http.Request) string {
	if id, ok := obs.SanitizeRequestID(r.Header.Get("X-Request-ID")); ok {
		return id
	}
	return obs.NewRequestID()
}

// withObservability is the outermost handler: request-ID assignment,
// access logging, latency recording, panic recovery.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := requestID(r)
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(obs.WithRequestID(r.Context(), id))
		// The mux sets r.Pattern on its own clone of the request, after
		// this middleware ran — resolve the route here so the histogram's
		// label is the bounded pattern set, never the raw (unbounded,
		// client-controlled) URL path.
		_, route := s.mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		log := s.log.With("request_id", id)
		log.Debug("request start", "method", r.Method, "path", r.URL.Path, "route", route)

		ww, sw := wrapWriter(w)
		started := time.Now()
		finish := func() {
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			elapsed := time.Since(started)
			s.met.httpHist.With(route, statusLabel(sw.status)).ObserveDuration(elapsed)
			log.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"route", route,
				"status", sw.status,
				"bytes", sw.bytes,
				"dur_ms", float64(elapsed.Nanoseconds())/1e6,
			)
		}
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					// The sentinel asks the server to abort the connection
					// quietly; honor it after accounting the request.
					sw.status = http.StatusInternalServerError
					finish()
					panic(rec)
				}
				log.Error("handler panic", "route", route, "panic", rec, "stack", string(debug.Stack()))
				if sw.status == 0 {
					sw.WriteHeader(http.StatusInternalServerError)
				} else {
					sw.status = http.StatusInternalServerError
				}
				finish()
				return
			}
			finish()
		}()
		next.ServeHTTP(ww, r)
	})
}

// statusLabel renders a status code for the histogram's label without
// allocating for the common codes.
func statusLabel(code int) string {
	switch code {
	case http.StatusOK:
		return "200"
	case http.StatusCreated:
		return "201"
	case http.StatusNoContent:
		return "204"
	case http.StatusBadRequest:
		return "400"
	case http.StatusNotFound:
		return "404"
	case http.StatusInternalServerError:
		return "500"
	case http.StatusServiceUnavailable:
		return "503"
	}
	return strconv.Itoa(code)
}
