// Digital-twin sessions: long-lived sim.Sessions held open across
// requests, so a client can mirror a vehicle that exists in real time —
// feed the boundary conditions its sensors actually measured, tick by
// tick or in batches, and read the accumulated energy ledger at any
// point. This is the interactive counterpart to /v1/runs' replay-then-
// answer shape, and the serving surface for the Session engine's
// checkpoint subsystem (sim.Snapshot / sim.RestoreSession encoded by
// report.MarshalCheckpoint):
//
//	POST   /v1/sessions                  create (fresh, or restore with
//	                                     "from_checkpoint")
//	GET    /v1/sessions                  list open sessions
//	GET    /v1/sessions/{id}             summary
//	POST   /v1/sessions/{id}/step        advance: explicit conditions,
//	                                     a named cycle, or a CSV log
//	GET    /v1/sessions/{id}/checkpoint  versioned checkpoint JSON
//	DELETE /v1/sessions/{id}             close
//
// Registry discipline: at most Config.MaxSessions live at once
// (creates beyond the cap are shed with 503), and sessions idle past
// Config.SessionIdleTTL are evicted opportunistically on the next
// create or list — no janitor goroutine, so the server still quiesces
// completely between requests.
//
// Ownership rule (the result-aliasing fix this subsystem enforces):
// sim.Session.Result returns the live accumulator, mutated in place by
// every Step. Any Result that escapes a handler — summary fields,
// checkpoint payloads — is taken via Result().Clone() *under the
// per-session mutex that serializes Step*, so a concurrent step can
// never mutate a payload mid-marshal (pinned by a -race test).
//
// Drain semantics: a draining server refuses further steps (the twin
// is sealed) but keeps summaries and checkpoints readable through the
// grace window, so clients checkpoint their sessions and re-create
// them elsewhere — checkpoint-and-close, not data loss.

package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"tegrecon/internal/drive"
	"tegrecon/internal/obs"
	"tegrecon/internal/report"
	"tegrecon/internal/sim"
	"tegrecon/internal/thermal"
	"tegrecon/internal/trace"
)

// twinSession is one registry entry: a live sim.Session plus the mutex
// that serializes every touch of it. All engine access — Step,
// Snapshot, Result — happens under mu; registry bookkeeping (lastUsed)
// is guarded by the registry's own lock.
type twinSession struct {
	id      string
	scheme  string
	modules int
	created time.Time

	mu   sync.Mutex // serializes Step / Snapshot / Result on sess
	sess *sim.Session
}

// sessionRegistry is the bounded id → twinSession table.
type sessionRegistry struct {
	mu       sync.Mutex
	entries  map[string]*twinSession
	lastUsed map[string]time.Time
	max      int
	ttl      time.Duration
}

func newSessionRegistry(max int, ttl time.Duration) *sessionRegistry {
	return &sessionRegistry{
		entries:  make(map[string]*twinSession),
		lastUsed: make(map[string]time.Time),
		max:      max,
		ttl:      ttl,
	}
}

// sweepLocked evicts entries idle past the TTL. Callers hold r.mu.
func (r *sessionRegistry) sweepLocked(now time.Time) (evicted int) {
	for id, used := range r.lastUsed {
		if now.Sub(used) > r.ttl {
			delete(r.entries, id)
			delete(r.lastUsed, id)
			evicted++
		}
	}
	return evicted
}

// full sweeps idle sessions and reports whether the registry is at
// capacity. It is the cheap admission pre-check a create runs before
// paying for session construction (in particular a checkpoint
// restore's RNG replay); add re-checks under its own lock at insert
// time, so a lost race still sheds correctly — this just stops the
// certainly-doomed requests from doing the work first.
func (r *sessionRegistry) full(now time.Time) (evicted int, full bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	evicted = r.sweepLocked(now)
	return evicted, len(r.entries) >= r.max
}

// add sweeps idle sessions, then admits the entry if the cap allows.
func (r *sessionRegistry) add(e *twinSession, now time.Time) (evicted int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	evicted = r.sweepLocked(now)
	if len(r.entries) >= r.max {
		return evicted, false
	}
	r.entries[e.id] = e
	r.lastUsed[e.id] = now
	return evicted, true
}

// get returns the entry and refreshes its idle clock.
func (r *sessionRegistry) get(id string, now time.Time) (*twinSession, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if ok {
		r.lastUsed[id] = now
	}
	return e, ok
}

// remove deletes the entry, reporting whether it existed.
func (r *sessionRegistry) remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.entries[id]
	delete(r.entries, id)
	delete(r.lastUsed, id)
	return ok
}

// list sweeps, then returns the surviving entries with their idle
// clocks, sorted by id for a stable response.
func (r *sessionRegistry) list(now time.Time) ([]*twinSession, []time.Time, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	evicted := r.sweepLocked(now)
	out := make([]*twinSession, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	used := make([]time.Time, len(out))
	for i, e := range out {
		used[i] = r.lastUsed[e.id]
	}
	return out, used, evicted
}

func (r *sessionRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// noteEvicted accounts (and logs) a registry sweep's TTL evictions.
func (s *Server) noteEvicted(n int) {
	if n > 0 {
		s.met.sessionsEvicted.Add(int64(n))
		s.log.Info("idle sessions evicted", "count", n, "ttl_s", s.cfg.SessionIdleTTL.Seconds())
	}
}

func newSessionID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return "tw-" + hex.EncodeToString(b[:]), nil
}

// --- request / response schema ---

// SessionCreateRequest is the POST /v1/sessions body. Either a fresh
// session (scheme plus the usual physics knobs, same defaults as
// /v1/runs) or a restore: "from_checkpoint" carries the verbatim
// payload of GET /v1/sessions/{id}/checkpoint and excludes every other
// field — a checkpoint already fixes the physics, and silently
// overriding part of it would break the bit-exact resume contract.
type SessionCreateRequest struct {
	Scheme       string   `json:"scheme,omitempty"`
	TickS        float64  `json:"tick_s,omitempty"`
	Seed         *int64   `json:"seed,omitempty"`
	SensorNoiseC *float64 `json:"sensor_noise_c,omitempty"`
	Modules      int      `json:"modules,omitempty"`
	HorizonTicks int      `json:"horizon_ticks,omitempty"`
	Battery      bool     `json:"battery,omitempty"`
	// DeterministicRuntime defaults to true; it is also the condition
	// for a checkpointed twin to replay bit-exactly after restore.
	DeterministicRuntime *bool `json:"deterministic_runtime,omitempty"`
	// Ticks keeps the per-control-period records in the session result
	// (and therefore in its checkpoints).
	Ticks bool `json:"ticks,omitempty"`
	// FromCheckpoint restores a session from a checkpoint payload.
	FromCheckpoint json.RawMessage `json:"from_checkpoint,omitempty"`
}

// SessionStepRequest is the POST /v1/sessions/{id}/step body. Exactly
// one condition source:
//
//   - "conditions": explicit boundary conditions, one per control
//     period — the live-mirror path.
//   - "cycle" (+ "ticks", default 1): sample a registered drive cycle
//     at the session's own clock, so repeated steps walk through the
//     cycle; stepping past its end is a 400.
//   - "csv" (+ "channel", + "ticks"): same, over an uploaded speed log
//     in the trace CSV format (drive.ReadSchedule).
type SessionStepRequest struct {
	Conditions []ConditionsJSON `json:"conditions,omitempty"`
	Cycle      string           `json:"cycle,omitempty"`
	CSV        string           `json:"csv,omitempty"`
	Channel    string           `json:"channel,omitempty"`
	Ticks      int              `json:"ticks,omitempty"`
	// ReturnTicks includes every applied tick in the response instead
	// of just the last one.
	ReturnTicks bool `json:"return_ticks,omitempty"`
}

// ConditionsJSON is thermal.Conditions on the wire.
type ConditionsJSON struct {
	CoolantInletC  float64 `json:"coolant_inlet_c"`
	CoolantFlowKgS float64 `json:"coolant_flow_kgs"`
	AirInletC      float64 `json:"air_inlet_c"`
	AirFlowKgS     float64 `json:"air_flow_kgs"`
}

func (c ConditionsJSON) conditions() thermal.Conditions {
	return thermal.Conditions{
		CoolantInletC:  c.CoolantInletC,
		CoolantFlowKgS: c.CoolantFlowKgS,
		AirInletC:      c.AirInletC,
		AirFlowKgS:     c.AirFlowKgS,
	}
}

// sessionSummary is the GET /v1/sessions/{id} body (and the "session"
// object other session responses embed): identity, clock position and
// the accumulated ledger.
type sessionSummary struct {
	ID           string  `json:"id"`
	Scheme       string  `json:"scheme"`
	Modules      int     `json:"modules"`
	Steps        int     `json:"steps"`
	NowS         float64 `json:"now_s"`
	EnergyOutJ   float64 `json:"energy_out_j"`
	OverheadJ    float64 `json:"overhead_j"`
	SwitchEvents int     `json:"switch_events"`
	AvgTEGEff    float64 `json:"avg_teg_eff"`
	BatteryJ     float64 `json:"battery_j"`
	AgeS         float64 `json:"age_s"`
}

// summary reads the session under its lock. The Result escapes the
// lock as a clone — never the live accumulator.
func (e *twinSession) summary(now time.Time) sessionSummary {
	e.mu.Lock()
	steps, nowS := e.sess.Steps(), e.sess.Now()
	res := e.sess.Result().Clone()
	e.mu.Unlock()
	return sessionSummary{
		ID:           e.id,
		Scheme:       e.scheme,
		Modules:      e.modules,
		Steps:        steps,
		NowS:         nowS,
		EnergyOutJ:   res.EnergyOutJ,
		OverheadJ:    res.OverheadJ,
		SwitchEvents: res.SwitchEvents,
		AvgTEGEff:    res.AvgTEGEff,
		BatteryJ:     res.BatteryJ,
		AgeS:         now.Sub(e.created).Seconds(),
	}
}

// --- handlers ---

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionCreateRequest
	if herr := decodeJSON(w, r, &req); herr != nil {
		s.writeHTTPError(w, herr)
		return
	}
	if s.Draining() {
		s.writeJSONError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	// Admission pre-check: a create that is going to be shed anyway must
	// not first pay for construction (restores replay the checkpoint's
	// whole RNG history). add() re-checks under its lock, so a race
	// between two creates for the last slot still resolves correctly.
	evicted, full := s.sessions.full(time.Now())
	s.noteEvicted(evicted)
	if full {
		s.writeJSONError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("session registry full (%d open), retry later or delete one", s.cfg.MaxSessions))
		return
	}
	var (
		sess     *sim.Session
		scheme   string
		modules  int
		restored bool
	)
	if len(req.FromCheckpoint) > 0 {
		if req.Scheme != "" || req.TickS != 0 || req.Seed != nil || req.SensorNoiseC != nil ||
			req.Modules != 0 || req.HorizonTicks != 0 || req.Battery || req.Ticks ||
			req.DeterministicRuntime != nil {
			s.writeJSONError(w, http.StatusBadRequest, "from_checkpoint excludes every other field — the checkpoint already fixes the physics")
			return
		}
		st, err := report.UnmarshalCheckpoint(req.FromCheckpoint)
		if err != nil {
			s.writeJSONError(w, http.StatusBadRequest, err.Error())
			return
		}
		if st.Modules < 1 || st.Modules > s.cfg.MaxModules {
			s.writeJSONError(w, http.StatusBadRequest,
				fmt.Sprintf("checkpoint modules %d outside 1..%d", st.Modules, s.cfg.MaxModules))
			return
		}
		// rng_draws is client-claimed progress that the restore replays
		// draw by draw. sim rejects positions beyond steps×modules, but
		// both factors are client-claimed too, so the server imposes its
		// own absolute ceiling — and runs the replay under the bounded
		// job queue with a cancelable context, like any other simulation
		// work, never unbounded on the handler goroutine.
		if st.RNGDraws > s.cfg.MaxRestoreDraws {
			s.writeJSONError(w, http.StatusBadRequest,
				fmt.Sprintf("checkpoint rng position %d over the server's %d-draw restore cap", st.RNGDraws, s.cfg.MaxRestoreDraws))
			return
		}
		sys := sim.DefaultSystem()
		sys.Modules = st.Modules
		ctx, cancel := s.jobContext(r.Context())
		defer cancel()
		// The queue slot and the job timer are released by defers inside
		// the closure (not by explicit calls on the success path) so a
		// panic during the restore replay cannot leak an execution slot.
		sess, err = func() (*sim.Session, error) {
			if err := s.q.acquire(ctx); err != nil {
				return nil, err
			}
			defer s.q.release()
			started := time.Now()
			defer func() { s.met.observeJob(time.Since(started)) }()
			return sim.RestoreSessionContext(ctx, sys, st)
		}()
		if err != nil {
			if errors.Is(err, errQueueFull) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				s.writeJobError(w, r, err) // shed / drain / client gone, not a bad checkpoint
			} else {
				s.writeJSONError(w, http.StatusBadRequest, err.Error())
			}
			return
		}
		scheme, modules, restored = st.Scheme, st.Modules, true
	} else {
		if req.Scheme == "" {
			s.writeJSONError(w, http.StatusBadRequest, "missing scheme (GET /v1/schemes lists them)")
			return
		}
		sch, err := sim.SchemeByName(req.Scheme)
		if err != nil {
			s.writeJSONError(w, http.StatusBadRequest, err.Error())
			return
		}
		if herr := s.normalizeShared(&req.TickS, &req.Seed, &req.SensorNoiseC, &req.Modules, &req.HorizonTicks); herr != nil {
			s.writeHTTPError(w, herr)
			return
		}
		sys := sim.DefaultSystem()
		sys.Modules = req.Modules
		ctrl, err := sch.New(sys, sim.SchemeConfig{HorizonTicks: req.HorizonTicks, TickSeconds: req.TickS})
		if err != nil {
			s.writeJSONError(w, http.StatusBadRequest, err.Error())
			return
		}
		opts := sim.DefaultOptions()
		opts.TickSeconds = req.TickS
		opts.SensorNoiseC = *req.SensorNoiseC
		opts.Seed = *req.Seed
		opts.Battery = req.Battery
		opts.DeterministicRuntime = req.DeterministicRuntime == nil || *req.DeterministicRuntime
		opts.KeepTicks = req.Ticks
		opts.PhaseSampleEvery = s.cfg.PhaseSampleEvery
		sess, err = sim.NewSession(sys, ctrl, opts)
		if err != nil {
			s.writeJSONError(w, http.StatusBadRequest, err.Error())
			return
		}
		scheme, modules = sch.Name, req.Modules
	}
	id, err := newSessionID()
	if err != nil {
		s.writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	now := time.Now()
	e := &twinSession{id: id, scheme: scheme, modules: modules, created: now, sess: sess}
	evicted, ok := s.sessions.add(e, now)
	s.noteEvicted(evicted)
	if !ok {
		s.writeJSONError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("session registry full (%d open), retry later or delete one", s.cfg.MaxSessions))
		return
	}
	s.met.sessionsCreated.Add(1)
	if restored {
		s.met.sessionsRestored.Add(1)
	}
	s.log.Info("session created",
		"session_id", id, "scheme", scheme, "modules", modules, "restored", restored,
		"request_id", obs.RequestID(r.Context()))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(map[string]any{"session": e.summary(now)})
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	entries, _, evicted := s.sessions.list(now)
	s.noteEvicted(evicted)
	out := struct {
		Sessions []sessionSummary `json:"sessions"`
	}{Sessions: make([]sessionSummary, 0, len(entries))}
	for _, e := range entries {
		out.Sessions = append(out.Sessions, e.summary(now))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	e, ok := s.sessions.get(r.PathValue("id"), time.Now())
	if !ok {
		s.writeJSONError(w, http.StatusNotFound, "no such session")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"session": e.summary(time.Now())})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.remove(id) {
		s.writeJSONError(w, http.StatusNotFound, "no such session")
		return
	}
	s.log.Info("session deleted", "session_id", id, "request_id", obs.RequestID(r.Context()))
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSessionCheckpoint(w http.ResponseWriter, r *http.Request) {
	e, ok := s.sessions.get(r.PathValue("id"), time.Now())
	if !ok {
		s.writeJSONError(w, http.StatusNotFound, "no such session")
		return
	}
	// Snapshot under the step lock: the state must be a consistent
	// between-ticks cut, not a torn read of a stepping session.
	e.mu.Lock()
	st, err := e.sess.Snapshot()
	e.mu.Unlock()
	if err != nil {
		s.writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	payload, err := report.MarshalCheckpoint(st)
	if err != nil {
		s.writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.met.checkpoints.Add(1)
	writePayload(w, "bypass", payload)
}

// stepSource is a step request reduced to where its conditions come
// from: an explicit sequence, or a synthesized drive trace still to be
// sampled at the twin's clock. The sampling is deliberately deferred:
// the clock read and the steps it positions must happen under one
// continuous hold of the session mutex, or a concurrent step on the
// same session advances the clock in between and the source segment
// replays overlapped — breaking the "continues the source where it
// left off" contiguity contract.
type stepSource struct {
	conds []thermal.Conditions // explicit conditions, or nil
	tr    *trace.Trace         // drive source (cycle / csv), or nil
	ticks int                  // periods to sample from tr
}

// parseStepSource validates a step request and builds its source. No
// session state is consulted — everything here is safe before the job
// queue and outside the session lock.
func (s *Server) parseStepSource(req SessionStepRequest) (*stepSource, *httpError) {
	sources := 0
	if len(req.Conditions) > 0 {
		sources++
	}
	if req.Cycle != "" {
		sources++
	}
	if req.CSV != "" {
		sources++
	}
	if sources != 1 {
		return nil, errf(http.StatusBadRequest, "exactly one of conditions, cycle or csv must be given")
	}
	if len(req.Conditions) > 0 {
		if req.Ticks != 0 {
			return nil, errf(http.StatusBadRequest, "ticks applies to cycle/csv sources; conditions carry their own count")
		}
		if len(req.Conditions) > s.cfg.MaxTicksPerJob {
			return nil, errf(http.StatusBadRequest, "%d conditions over the server's %d-tick limit", len(req.Conditions), s.cfg.MaxTicksPerJob)
		}
		conds := make([]thermal.Conditions, len(req.Conditions))
		for i, c := range req.Conditions {
			conds[i] = c.conditions()
			if err := conds[i].Validate(); err != nil {
				return nil, errf(http.StatusBadRequest, "conditions[%d]: %v", i, err)
			}
		}
		return &stepSource{conds: conds}, nil
	}
	ticks := req.Ticks
	if ticks == 0 {
		ticks = 1
	}
	if ticks < 1 || ticks > s.cfg.MaxTicksPerJob {
		return nil, errf(http.StatusBadRequest, "ticks %d outside 1..%d", ticks, s.cfg.MaxTicksPerJob)
	}
	var (
		sched drive.Schedule
		err   error
	)
	if req.Cycle != "" {
		cycle, cerr := drive.CycleByName(req.Cycle)
		if cerr != nil {
			return nil, errf(http.StatusBadRequest, "%v", cerr)
		}
		sched = cycle.Schedule()
	} else {
		sched, err = drive.ReadSchedule(strings.NewReader(req.CSV), req.Channel)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "csv: %v", err)
		}
	}
	tr, err := drive.FromSpeedSchedule(drive.DefaultSynthConfig(), sched)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	return &stepSource{tr: tr, ticks: ticks}, nil
}

// sample materializes the condition sequence at the twin's current
// clock: a session that has lived 0..now_s continues the source where
// it left off. Callers hold the session mutex and keep holding it
// through the steps these conditions drive — that single critical
// section is what makes consecutive batches walk the source
// contiguously under concurrent steppers.
func (src *stepSource) sample(nowS, tickS float64) ([]thermal.Conditions, *httpError) {
	if src.conds != nil {
		return src.conds, nil
	}
	end := src.tr.Times[0] + src.tr.Duration()
	conds := make([]thermal.Conditions, src.ticks)
	for k := range conds {
		t := nowS + float64(k)*tickS
		// trace.At clamps past the last sample; a twin silently frozen
		// on the source's final row would be wrong, not convenient.
		if t > end {
			return nil, errf(http.StatusBadRequest, "t=%g past the source's end (%g s) — the twin has outlived this drive source", t, end)
		}
		var err error
		conds[k], err = drive.ConditionsAt(src.tr, t)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "t=%g: %v", t, err)
		}
	}
	return conds, nil
}

func (s *Server) handleSessionStep(w http.ResponseWriter, r *http.Request) {
	e, ok := s.sessions.get(r.PathValue("id"), time.Now())
	if !ok {
		s.writeJSONError(w, http.StatusNotFound, "no such session")
		return
	}
	if s.Draining() {
		// The twin is sealed: no more state advances, but its checkpoint
		// stays fetchable through the drain grace window.
		s.writeJSONError(w, http.StatusServiceUnavailable,
			"server draining — session sealed; fetch its checkpoint and restore elsewhere")
		return
	}
	var req SessionStepRequest
	if herr := decodeJSON(w, r, &req); herr != nil {
		s.writeHTTPError(w, herr)
		return
	}
	src, herr := s.parseStepSource(req)
	if herr != nil {
		s.writeHTTPError(w, herr)
		return
	}
	// Stepping is real simulation work; it runs under the same bounded
	// queue as runs and sweeps so a flood of large step batches cannot
	// oversubscribe the host.
	ctx, cancel := s.jobContext(r.Context())
	defer cancel()
	if err := s.q.acquire(ctx); err != nil {
		s.writeJobError(w, r, err)
		return
	}
	defer s.q.release()

	started := time.Now()
	var (
		ticks      []json.RawMessage
		omitted    int   // ticks applied but not marshaled
		marshalErr error // last MarshalTick failure
	)
	// One continuous hold of e.mu from the clock read through the last
	// Step: sampling the drive source and applying its ticks must be a
	// single critical section, or a concurrent step on the same session
	// moves the clock between them and the source segment replays
	// overlapped.
	e.mu.Lock()
	phasesBefore := e.sess.PhaseTimings()
	conds, herr := src.sample(e.sess.Now(), e.sess.TickSeconds())
	if herr != nil {
		e.mu.Unlock()
		s.writeHTTPError(w, herr)
		return
	}
	for i, c := range conds {
		if err := ctx.Err(); err != nil {
			e.mu.Unlock()
			s.writeJobError(w, r, err)
			return
		}
		tick, err := e.sess.Step(c)
		if err != nil {
			e.mu.Unlock()
			s.writeJSONError(w, http.StatusInternalServerError,
				fmt.Sprintf("step %d of %d: %v", i+1, len(conds), err))
			return
		}
		s.met.ticks.Add(1)
		s.met.sessionSteps.Add(1)
		if req.ReturnTicks || i == len(conds)-1 {
			if b, merr := report.MarshalTick(tick); merr == nil {
				if !req.ReturnTicks {
					ticks = ticks[:0]
				}
				ticks = append(ticks, b)
			} else {
				omitted++
				marshalErr = merr
			}
		}
	}
	phasesAfter := e.sess.PhaseTimings()
	e.mu.Unlock()
	// Fold this batch's sampled phase timings into the service aggregate
	// — the delta, because the session accumulator is cumulative and a
	// long-lived twin is stepped through many requests.
	s.phases.add(phaseDelta(phasesBefore, phasesAfter))
	s.met.observeJob(time.Since(started))
	summary := e.summary(time.Now())

	out := map[string]any{
		"session":       summary,
		"ticks_applied": len(conds),
	}
	if req.ReturnTicks {
		out["ticks"] = ticks
	} else if len(ticks) > 0 {
		out["last_tick"] = ticks[0]
	}
	if omitted > 0 {
		// The steps were applied — the session advanced — so this is
		// not a failure of the request, but the client must not mistake
		// missing ticks for ticks that never ran.
		out["ticks_omitted"] = omitted
		out["tick_marshal_error"] = marshalErr.Error()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
