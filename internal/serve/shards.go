// POST /v1/shards: the internal worker protocol behind coordinator
// mode. A coordinator (a server configured with WorkerPeers) splits a
// sweep's cycle list or a matrix's missing-cell list into contiguous
// shards (scenario.PlanShards), posts each to a peer, and merges the
// partial results into the same envelope a single process would have
// produced. The merge is sound by construction: every cell's seed
// derives from its coordinate and every sweep job from the shared
// request seed, so a shard computes bit-identical values wherever it
// runs — distribution changes who simulates, never what. A peer that
// fails mid-shard (crash, network, 5xx) is not retried remotely: the
// coordinator recomputes that shard locally, trading latency for the
// guarantee that one dead worker can never change or lose a result.
//
// Workers never re-fan-out: the shard handler always computes locally,
// so a misconfigured ring of coordinators degrades into local
// computation instead of recursing.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"tegrecon/internal/experiments"
	"tegrecon/internal/report"
	"tegrecon/internal/scenario"
)

// ShardRequest is the POST /v1/shards body. Exactly one of the two
// legs is populated, selected by Kind.
type ShardRequest struct {
	// Kind is "matrix" or "sweep".
	Kind string `json:"kind"`
	// Matrix is the full normalized spec (kind "matrix"). The worker
	// re-expands it — expansion is deterministic, so coordinator and
	// worker agree on every cell index — and simulates only Cells.
	Matrix *scenario.Matrix `json:"matrix,omitempty"`
	// Cells are indices into the full expansion's stable cell order.
	Cells []int `json:"cells,omitempty"`
	// Sweep is the sub-sweep to run (kind "sweep"): the coordinator's
	// normalized request narrowed to this shard's cycles. Every sweep
	// job is seeded from the request alone, so a cycle subset computes
	// the same rows the full sweep would.
	Sweep *SweepRequest `json:"sweep,omitempty"`
}

// shardMatrixResponse carries a matrix shard's cells back. Cell Index
// values are positions in the full expansion (Subset preserves them),
// which is all the coordinator needs to merge.
type shardMatrixResponse struct {
	Cells []experiments.MatrixCell `json:"cells"`
}

// --- worker side ---

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if herr := decodeJSON(w, r, &req); herr != nil {
		s.writeHTTPError(w, herr)
		return
	}
	if s.Draining() {
		s.writeJSONError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	s.met.shardsServed.Add(1)
	switch req.Kind {
	case "matrix":
		s.handleMatrixShard(w, r, req)
	case "sweep":
		s.handleSweepShard(w, r, req)
	default:
		s.writeJSONError(w, http.StatusBadRequest, "shard kind must be \"matrix\" or \"sweep\"")
	}
}

func (s *Server) handleMatrixShard(w http.ResponseWriter, r *http.Request, req ShardRequest) {
	if req.Matrix == nil || len(req.Cells) == 0 {
		s.writeJSONError(w, http.StatusBadRequest, "matrix shard needs a spec and a non-empty cell list")
		return
	}
	// The worker enforces its own admission bounds on the full spec —
	// a worker behind a bigger coordinator sheds the shard as a 400,
	// which the coordinator absorbs by computing locally.
	p, herr := s.normalizeMatrix(MatrixRequest{Matrix: *req.Matrix})
	if herr != nil {
		s.writeHTTPError(w, herr)
		return
	}
	key, err := matrixKey(p.m)
	if err != nil {
		s.writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	ex, _, err := s.expandMatrix(p, key)
	if err != nil {
		s.writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	sub, err := ex.Subset(req.Cells)
	if err != nil {
		s.writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	keys := make([]string, len(sub.Cells))
	for i, c := range sub.Cells {
		keys[i] = cellKey(p, c)
	}
	// The shard runs under the coordinator's request context: if the
	// coordinator gives up (or this worker drains), the simulation
	// aborts at its next per-tick check.
	ctx, cancel := s.jobContext(r.Context())
	defer cancel()
	if err := s.q.acquire(ctx); err != nil {
		s.writeJobError(w, r, err)
		return
	}
	defer s.q.release()
	s.met.computations.Add(1)
	started := time.Now()
	defer func() { s.met.observeJob(time.Since(started)) }()
	cells, _, err := s.computeMatrix(ctx, sub, keys, nil, false)
	if err != nil {
		s.writeJobError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(shardMatrixResponse{Cells: cells})
}

func (s *Server) handleSweepShard(w http.ResponseWriter, r *http.Request, req ShardRequest) {
	if req.Sweep == nil {
		s.writeJSONError(w, http.StatusBadRequest, "sweep shard needs a sweep request")
		return
	}
	p, herr := s.normalizeSweep(*req.Sweep)
	if herr != nil {
		s.writeHTTPError(w, herr)
		return
	}
	// distribute=false: a shard computes here, never fans out again.
	s.serveSweepCached(w, r, p, false)
}

// --- coordinator side ---

// postShard posts one shard to a peer and returns the response body.
// Any transport error, non-200 status, or truncated body counts as a
// failed shard — the caller recomputes locally.
func (s *Server) postShard(ctx context.Context, peer string, shard ShardRequest) ([]byte, error) {
	body, err := json.Marshal(shard)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/shards", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	s.met.shardsDispatched.Add(1)
	resp, err := s.peers.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s: %s: %s", peer, resp.Status, truncate(b, 200))
	}
	return b, nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(bytes.TrimSpace(b))
}

// distributeMatrixCells computes the missing cells (indices into
// ex.Cells) across the worker peers and returns them in missing order,
// every cell validated against the coordinate it was asked for. A
// failed shard — dead peer, bad response, index mismatch — is
// recomputed locally; only a local failure (shutdown, bad spec)
// surfaces as an error.
func (s *Server) distributeMatrixCells(ctx context.Context, ex *scenario.Expansion, missing []int) ([]experiments.MatrixCell, error) {
	peers := s.cfg.WorkerPeers
	shards := scenario.PlanShards(len(missing), len(peers))
	results := make([][]experiments.MatrixCell, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for si, rng := range shards {
		wg.Add(1)
		go func(si int, idxs []int) {
			defer wg.Done()
			peer := peers[si%len(peers)]
			cells, err := s.dispatchMatrixShard(ctx, peer, ex, idxs)
			if err != nil {
				s.met.shardRetries.Add(1)
				s.log.Warn("matrix shard failed, recomputing locally",
					"peer", peer, "cells", len(idxs), "error", err)
				cells, err = s.localMatrixShard(ctx, ex, idxs)
			}
			results[si], errs[si] = cells, err
		}(si, missing[rng[0]:rng[1]])
	}
	wg.Wait()
	out := make([]experiments.MatrixCell, 0, len(missing))
	for si := range shards {
		if errs[si] != nil {
			return nil, errs[si]
		}
		out = append(out, results[si]...)
	}
	return out, nil
}

// dispatchMatrixShard runs one cell-index shard on a peer and
// validates the response cell-by-cell: the peer expanded the same
// normalized spec, so indices and coordinates must line up exactly —
// anything else means a version-skewed or confused peer, and the shard
// is treated as failed rather than merged.
func (s *Server) dispatchMatrixShard(ctx context.Context, peer string, ex *scenario.Expansion, idxs []int) ([]experiments.MatrixCell, error) {
	b, err := s.postShard(ctx, peer, ShardRequest{Kind: "matrix", Matrix: ex.Matrix, Cells: idxs})
	if err != nil {
		return nil, err
	}
	var resp shardMatrixResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		return nil, fmt.Errorf("peer %s: decoding shard response: %w", peer, err)
	}
	if len(resp.Cells) != len(idxs) {
		return nil, fmt.Errorf("peer %s: %d cells for a %d-cell shard", peer, len(resp.Cells), len(idxs))
	}
	for k, c := range resp.Cells {
		want := ex.Cells[idxs[k]]
		if c.Index != want.Index || c.Coord != want.Coord {
			return nil, fmt.Errorf("peer %s: cell %d is %q (index %d), want %q (index %d)",
				peer, k, c.Coord, c.Index, want.Coord, want.Index)
		}
	}
	return resp.Cells, nil
}

// localMatrixShard is the retry path: the same Subset the peer would
// have run, on this process's batch pool.
func (s *Server) localMatrixShard(ctx context.Context, ex *scenario.Expansion, idxs []int) ([]experiments.MatrixCell, error) {
	sub, err := ex.Subset(idxs)
	if err != nil {
		return nil, err
	}
	res, err := experiments.RunExpansionContext(ctx, sub, experiments.MatrixOptions{
		Workers: s.cfg.Workers,
		OnTick:  s.matrixTicksObserver(),
	})
	if err != nil {
		return nil, err
	}
	return res.Cells, nil
}

// distributedSweep fans the sweep's cycles out to the worker peers and
// merges the per-shard tables back into the envelope a single process
// would produce. Shards are contiguous cycle ranges in request order,
// so concatenating the returned rows in shard order reproduces the
// serial row order; every job's seed comes from the request, so the
// row contents are bit-identical wherever they ran. The coordinator
// holds no queue slot while peers work — only a local retry claims
// one, inside sweepPayload.
func (s *Server) distributedSweep(ctx context.Context, p sweepParams) ([]byte, error) {
	peers := s.cfg.WorkerPeers
	shards := scenario.PlanShards(len(p.cycles), len(peers))
	parts := make([]*report.Table, len(shards))
	errs := make([]error, len(shards))
	started := time.Now()
	defer func() { s.met.observeJob(time.Since(started)) }()
	var wg sync.WaitGroup
	for si, rng := range shards {
		wg.Add(1)
		go func(si int, sub sweepParams) {
			defer wg.Done()
			peer := peers[si%len(peers)]
			tab, err := s.dispatchSweepShard(ctx, peer, sub)
			if err != nil {
				s.met.shardRetries.Add(1)
				s.log.Warn("sweep shard failed, recomputing locally",
					"peer", peer, "cycles", len(sub.cycles), "error", err)
				var payload []byte
				if payload, err = s.sweepPayload(ctx, sub); err == nil {
					tab, err = sweepTableOf(payload)
				}
			}
			parts[si], errs[si] = tab, err
		}(si, p.subset(rng[0], rng[1]))
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged, err := report.MergeTables(parts)
	if err != nil {
		return nil, err
	}
	return json.Marshal(sweepEnvelope{Version: report.ResultVersion, Table: merged})
}

// subset narrows the normalized sweep to a contiguous cycle range.
func (p sweepParams) subset(lo, hi int) sweepParams {
	sub := p
	sub.cycles = p.cycles[lo:hi]
	return sub
}

// shardSweepRequest re-encodes a normalized sub-sweep as the request
// the worker will normalize again — canonical registry names and
// explicit values throughout, so both sides agree on every default.
func shardSweepRequest(p sweepParams) SweepRequest {
	names := make([]string, len(p.cycles))
	for i, c := range p.cycles {
		names[i] = c.Name
	}
	seed, noise := p.seed, p.noiseC
	return SweepRequest{
		Cycles:       names,
		Schemes:      p.schemes,
		MaxDurationS: p.maxDurationS,
		TickS:        p.tickS,
		Seed:         &seed,
		SensorNoiseC: &noise,
		Modules:      p.modules,
		HorizonTicks: p.horizon,
	}
}

func (s *Server) dispatchSweepShard(ctx context.Context, peer string, sub sweepParams) (*report.Table, error) {
	b, err := s.postShard(ctx, peer, ShardRequest{Kind: "sweep", Sweep: ptr(shardSweepRequest(sub))})
	if err != nil {
		return nil, err
	}
	tab, err := sweepTableOf(b)
	if err != nil {
		return nil, fmt.Errorf("peer %s: %w", peer, err)
	}
	return tab, nil
}

// sweepTableOf decodes a sweep envelope back to its table — the merge
// currency. The decoded strings are the exact bytes the worker
// rendered, so re-marshaling the merged table stays bit-identical to a
// single-process render.
func sweepTableOf(payload []byte) (*report.Table, error) {
	var env sweepEnvelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return nil, fmt.Errorf("decoding sweep envelope: %w", err)
	}
	if env.Version != report.ResultVersion || env.Table == nil {
		return nil, fmt.Errorf("sweep envelope version %d without a table (want version %d)", env.Version, report.ResultVersion)
	}
	return env.Table, nil
}

func ptr[T any](v T) *T { return &v }
