package serve

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// cache is the content-addressed result store: completed response
// payloads keyed by the canonical request hash (canonical.go), bounded
// by an LRU over both entry count and resident bytes — tick-bearing
// payloads can reach tens of MB each, so an entry bound alone would
// let a handful of large results defeat the server's bounded-memory
// design. Payloads are the exact bytes previously sent to a client, so
// a hit is byte-identical to the original response by construction —
// under DeterministicRuntime the physics is bit-reproducible, which
// makes serving the stored bytes equivalent to recomputing them.
type cache struct {
	mu       sync.Mutex
	max      int
	maxBytes int64
	bytes    int64
	order    *list.List // front = most recently used
	entries  map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key     string
	payload []byte
}

func newCache(maxEntries int, maxBytes int64) *cache {
	return &cache{
		max:      maxEntries,
		maxBytes: maxBytes,
		order:    list.New(),
		entries:  make(map[string]*list.Element, maxEntries),
	}
}

// get returns the stored payload and marks the entry most recently
// used. Callers must treat the payload as immutable.
func (c *cache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).payload, true
}

// peek is get without touching the hit/miss statistics or the LRU
// order — the flight leader's internal race re-check, invisible to the
// client-facing accounting.
func (c *cache) peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).payload, true
}

// put stores a payload, evicting from the LRU tail while either bound
// (entries or bytes) is exceeded. A payload larger than the whole byte
// budget is not cached at all — storing it would just flush everything
// else for an entry the next eviction removes anyway.
func (c *cache) put(key string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max <= 0 || int64(len(payload)) > c.maxBytes {
		return
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(payload)) - int64(len(e.payload))
		e.payload = payload
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, payload: payload})
		c.bytes += int64(len(payload))
	}
	for c.order.Len() > c.max || c.bytes > c.maxBytes {
		tail := c.order.Back()
		e := tail.Value.(*cacheEntry)
		c.order.Remove(tail)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.payload))
	}
}

// len reports the current entry count.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// size reports the resident payload bytes.
func (c *cache) size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// flightGroup coalesces concurrent cache misses for the same key into
// one computation: the first caller becomes the leader and runs fn,
// every concurrent duplicate blocks until the leader finishes and then
// shares its payload (or error). Combined with the cache this gives
// the "N clients ask for the same sweep, the sim runs once" property.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[string]*flight
}

type flight struct {
	done    chan struct{}
	payload []byte
	err     error
}

// do runs fn for the key unless an identical computation is already in
// flight, in which case it waits for and shares that one's outcome —
// or gives up early when the follower's own ctx dies (a disconnected
// client must not stay pinned for the leader's whole computation; the
// leader itself runs fn to completion regardless, since others may be
// waiting). The third return reports whether this caller was a
// follower.
func (g *flightGroup) do(ctx context.Context, key string, fn func() ([]byte, error)) ([]byte, error, bool) {
	g.mu.Lock()
	if g.inflight == nil {
		g.inflight = make(map[string]*flight)
	}
	if f, ok := g.inflight[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.payload, f.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	f := &flight{done: make(chan struct{})}
	g.inflight[key] = f
	g.mu.Unlock()

	f.payload, f.err = fn()
	g.mu.Lock()
	delete(g.inflight, key)
	g.mu.Unlock()
	close(f.done)
	return f.payload, f.err, false
}
