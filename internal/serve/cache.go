package serve

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"tegrecon/internal/store"
)

// cache is the content-addressed result store: completed response
// payloads keyed by the canonical request hash (canonical.go), bounded
// by an LRU over both entry count and resident bytes — tick-bearing
// payloads can reach tens of MB each, so an entry bound alone would
// let a handful of large results defeat the server's bounded-memory
// design. Payloads are the exact bytes previously sent to a client, so
// a hit is byte-identical to the original response by construction —
// under DeterministicRuntime the physics is bit-reproducible, which
// makes serving the stored bytes equivalent to recomputing them.
//
// An optional disk tier (internal/store) sits behind the memory LRU:
// gets fall through to disk before reporting a miss (promoting what
// they find), puts write through, so payloads survive a process
// restart and are shared by every process on the same store directory.
// The disk tier persists even when the memory tier is disabled.
type cache struct {
	mu       sync.Mutex
	max      int
	maxBytes int64
	bytes    int64
	order    *list.List // front = most recently used
	entries  map[string]*list.Element

	disk *store.Store // optional second tier (nil → memory only)

	hits      atomic.Int64
	misses    atomic.Int64
	diskHits  atomic.Int64 // hits answered by the disk tier
	diskFails atomic.Int64 // write-through Put errors (disk full, perms)
}

type cacheEntry struct {
	key     string
	payload []byte
}

func newCache(maxEntries int, maxBytes int64, disk *store.Store) *cache {
	return &cache{
		max:      maxEntries,
		maxBytes: maxBytes,
		order:    list.New(),
		entries:  make(map[string]*list.Element, maxEntries),
		disk:     disk,
	}
}

// get returns the stored payload and marks the entry most recently
// used, falling through to the disk tier on a memory miss (a disk hit
// is promoted into memory and counts as a client-visible hit — this is
// how a cold-restarted server answers with X-Cache: hit and zero
// recomputation). Callers must treat the payload as immutable.
func (c *cache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		payload := el.Value.(*cacheEntry).payload
		c.mu.Unlock()
		c.hits.Add(1)
		return payload, true
	}
	c.mu.Unlock()
	if c.disk != nil {
		if b, ok := c.disk.Get(key); ok {
			c.hits.Add(1)
			c.diskHits.Add(1)
			c.mu.Lock()
			c.memPut(key, b)
			c.mu.Unlock()
			return b, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// peek is get without touching the hit/miss statistics or the memory
// LRU order — the flight leader's internal race re-check and the
// matrix cell-recall probe, invisible to the client-facing accounting.
// A disk-tier find is returned without promotion: matrix recall peeks
// thousands of small cells and must not churn the memory LRU.
func (c *cache) peek(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		payload := el.Value.(*cacheEntry).payload
		c.mu.Unlock()
		return payload, true
	}
	c.mu.Unlock()
	if c.disk != nil {
		return c.disk.Get(key)
	}
	return nil, false
}

// has reports residency in either tier without reading any payload —
// the cell-status probe for matrix listings, where peek would pay a
// disk read per cell just to learn a boolean.
func (c *cache) has(key string) bool {
	c.mu.Lock()
	_, ok := c.entries[key]
	c.mu.Unlock()
	if ok {
		return true
	}
	return c.disk != nil && c.disk.Has(key)
}

// put stores a payload in the memory tier and writes it through to the
// disk tier. The tiers admit independently: an oversized or
// memory-disabled payload can still persist to disk (and a disk-full
// error never evicts the memory entry).
func (c *cache) put(key string, payload []byte) {
	c.mu.Lock()
	c.memPut(key, payload)
	c.mu.Unlock()
	if c.disk != nil {
		// Write-through outside the mutex: an fsync must never stall
		// concurrent cache reads.
		if err := c.disk.Put(key, payload); err != nil {
			c.diskFails.Add(1)
		}
	}
}

// memPut is the memory-tier admission: store the payload, then evict
// from the LRU tail while either bound (entries or bytes) is exceeded.
// A payload larger than the whole byte budget is rejected outright,
// before it can touch the LRU — admitting it would first flush every
// resident entry and then still leave the cache over budget with an
// entry the next eviction removes anyway. Callers hold c.mu.
func (c *cache) memPut(key string, payload []byte) {
	if c.max <= 0 || int64(len(payload)) > c.maxBytes {
		return
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(payload)) - int64(len(e.payload))
		e.payload = payload
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, payload: payload})
		c.bytes += int64(len(payload))
	}
	for c.order.Len() > c.max || c.bytes > c.maxBytes {
		tail := c.order.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*cacheEntry)
		c.order.Remove(tail)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.payload))
	}
}

// len reports the current entry count.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// size reports the resident payload bytes.
func (c *cache) size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// flightGroup coalesces concurrent cache misses for the same key into
// one computation: the first caller becomes the leader and runs fn,
// every concurrent duplicate blocks until the leader finishes and then
// shares its payload (or error). Combined with the cache this gives
// the "N clients ask for the same sweep, the sim runs once" property.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[string]*flight
}

type flight struct {
	done    chan struct{}
	payload []byte
	err     error
}

// do runs fn for the key unless an identical computation is already in
// flight, in which case it waits for and shares that one's outcome —
// or gives up early when the follower's own ctx dies (a disconnected
// client must not stay pinned for the leader's whole computation; the
// leader itself runs fn to completion regardless, since others may be
// waiting). The third return reports whether this caller was a
// follower.
func (g *flightGroup) do(ctx context.Context, key string, fn func() ([]byte, error)) ([]byte, error, bool) {
	g.mu.Lock()
	if g.inflight == nil {
		g.inflight = make(map[string]*flight)
	}
	if f, ok := g.inflight[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.payload, f.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	f := &flight{done: make(chan struct{})}
	g.inflight[key] = f
	g.mu.Unlock()

	f.payload, f.err = fn()
	g.mu.Lock()
	delete(g.inflight, key)
	g.mu.Unlock()
	close(f.done)
	return f.payload, f.err, false
}
