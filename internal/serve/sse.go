// Server-Sent Events: the streaming half of the run API. The encoder
// writes the wire format and flushes after every event so a tick
// reaches the client within its own control period; the decoder is the
// matching minimal client used by examples, tests and the smoke job.

package serve

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// eventWriter encodes text/event-stream frames onto a response.
type eventWriter struct {
	w  io.Writer
	fl http.Flusher
}

// newEventWriter claims the response for SSE, setting the stream
// headers. It fails when the transport cannot flush incrementally.
func newEventWriter(w http.ResponseWriter) (*eventWriter, error) {
	fl, ok := w.(http.Flusher)
	if !ok {
		return nil, fmt.Errorf("serve: response writer cannot stream (no http.Flusher)")
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	return &eventWriter{w: w, fl: fl}, nil
}

// event writes one named event and flushes it to the client. Data may
// span lines; each becomes its own data: field per the SSE grammar.
func (e *eventWriter) event(name string, data []byte) error {
	if _, err := fmt.Fprintf(e.w, "event: %s\n", name); err != nil {
		return err
	}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if _, err := fmt.Fprintf(e.w, "data: %s\n", line); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(e.w, "\n"); err != nil {
		return err
	}
	e.fl.Flush()
	return nil
}

// Event is one decoded server-sent event. The run stream emits `start`
// (run identity and parameters), `tick` (one per control period, the
// report tick schema), and exactly one terminal event: `summary` (the
// versioned Result JSON) on success or `error` otherwise.
type Event struct {
	Name string
	Data []byte
}

// ErrStopDecoding tells DecodeEvents to stop early: a callback that
// returns it ends the loop and DecodeEvents returns nil.
var ErrStopDecoding = errors.New("serve: stop decoding events")

// DecodeEvents parses a text/event-stream body, invoking fn for each
// complete event. It returns when the stream ends, fn fails, or fn
// returns ErrStopDecoding.
func DecodeEvents(r io.Reader, fn func(Event) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var name string
	var data [][]byte
	flush := func() error {
		if name == "" && data == nil {
			return nil
		}
		ev := Event{Name: name, Data: bytes.Join(data, []byte{'\n'})}
		name, data = "", nil
		return fn(ev)
	}
	for sc.Scan() {
		line := sc.Bytes()
		switch {
		case len(line) == 0:
			if err := flush(); err != nil {
				if errors.Is(err, ErrStopDecoding) {
					return nil
				}
				return err
			}
		case line[0] == ':': // comment / keep-alive
		case bytes.HasPrefix(line, []byte("event:")):
			name = string(bytes.TrimSpace(line[len("event:"):]))
		case bytes.HasPrefix(line, []byte("data:")):
			d := line[len("data:"):]
			if len(d) > 0 && d[0] == ' ' {
				d = d[1:]
			}
			data = append(data, append([]byte(nil), d...))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil && !errors.Is(err, ErrStopDecoding) {
		return err
	}
	return nil
}
