package serve_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"tegrecon/internal/report"
	"tegrecon/internal/serve"
)

// Example_client is the whole client lifecycle against an in-process
// server: submit a streaming run, consume the SSE tick stream, decode
// the terminal summary with the report schema, then observe the
// content-addressed cache answering the identical non-stream request.
func Example_client() {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"cycle":"delivery","scheme":"inor","duration_s":6,"modules":20}`

	// Streaming submission: one `tick` event per 0.5 s control period,
	// closed by a `summary` event carrying the versioned Result JSON.
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"cycle":"delivery","scheme":"inor","duration_s":6,"modules":20,"stream":true}`))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	ticks := 0
	err = serve.DecodeEvents(resp.Body, func(ev serve.Event) error {
		switch ev.Name {
		case "tick":
			ticks++
		case "summary":
			res, err := report.UnmarshalResult(ev.Data)
			if err != nil {
				return err
			}
			fmt.Printf("streamed %d ticks of %s over %s\n", ticks, res.Scheme, "delivery")
		}
		return nil
	})
	if err != nil {
		panic(err)
	}

	// The identical non-stream request is now answered from the
	// content-addressed cache, byte-identical to a fresh computation.
	resp2, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		panic(err)
	}
	resp2.Body.Close()
	fmt.Printf("repeat request served from cache: %s\n", resp2.Header.Get("X-Cache"))
	// Output:
	// streamed 13 ticks of INOR over delivery
	// repeat request served from cache: hit
}
