package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// sessionResponse decodes the "session" object every session endpoint
// embeds.
type sessionResponse struct {
	Session struct {
		ID           string  `json:"id"`
		Scheme       string  `json:"scheme"`
		Modules      int     `json:"modules"`
		Steps        int     `json:"steps"`
		NowS         float64 `json:"now_s"`
		EnergyOutJ   float64 `json:"energy_out_j"`
		OverheadJ    float64 `json:"overhead_j"`
		SwitchEvents int     `json:"switch_events"`
		AvgTEGEff    float64 `json:"avg_teg_eff"`
		BatteryJ     float64 `json:"battery_j"`
	} `json:"session"`
	TicksApplied int `json:"ticks_applied"`
}

func createSession(t *testing.T, url, body string) sessionResponse {
	t.Helper()
	resp, b := postJSON(t, url+"/v1/sessions", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, b)
	}
	var sr sessionResponse
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Session.ID == "" {
		t.Fatalf("create returned no id: %s", b)
	}
	return sr
}

func stepSession(t *testing.T, url, id, body string) sessionResponse {
	t.Helper()
	resp, b := postJSON(t, url+"/v1/sessions/"+id+"/step", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step: %d %s", resp.StatusCode, b)
	}
	var sr sessionResponse
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func getCheckpoint(t *testing.T, url, id string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/sessions/" + id + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, b)
	}
	return b
}

// TestSessionLifecycle drives the whole surface once: create, step
// from a named cycle, step with explicit conditions, summary, list,
// delete, 404 after delete.
func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	sr := createSession(t, ts.URL, `{"scheme":"inor","modules":20}`)
	id := sr.Session.ID
	if sr.Session.Scheme != "INOR" || sr.Session.Modules != 20 || sr.Session.Steps != 0 {
		t.Fatalf("unexpected create summary: %+v", sr.Session)
	}

	sr = stepSession(t, ts.URL, id, `{"cycle":"delivery","ticks":8}`)
	if sr.TicksApplied != 8 || sr.Session.Steps != 8 {
		t.Fatalf("cycle step applied %d, session at %d", sr.TicksApplied, sr.Session.Steps)
	}
	if sr.Session.EnergyOutJ <= 0 {
		t.Fatalf("no energy after 8 ticks: %+v", sr.Session)
	}

	sr = stepSession(t, ts.URL, id,
		`{"conditions":[{"coolant_inlet_c":90,"coolant_flow_kgs":0.12,"air_inlet_c":25,"air_flow_kgs":0.4}]}`)
	if sr.Session.Steps != 9 {
		t.Fatalf("conditions step left session at %d, want 9", sr.Session.Steps)
	}

	resp, err := http.Get(ts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var got sessionResponse
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil || got.Session.Steps != 9 {
		t.Fatalf("summary: %v %+v", err, got.Session)
	}

	resp, err = http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Sessions []json.RawMessage `json:"sessions"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil || len(list.Sessions) != 1 {
		t.Fatalf("list: %v, %d sessions", err, len(list.Sessions))
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	gresp, err := http.Get(ts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session answered %d, want 404", gresp.StatusCode)
	}
}

// TestSessionCheckpointRestoreOverHTTP is the serve-layer half of the
// checkpoint golden: a session stepped partway, checkpointed over the
// API, restored into a *different* server and stepped to the end must
// land on the identical summary (energy, overhead, switch counts) as
// an uninterrupted twin fed the same schedule — and the restored
// session's checkpoint must equal the uninterrupted one's byte for
// byte, the end-to-end bit-exactness proof.
func TestSessionCheckpointRestoreOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const create = `{"scheme":"dnor","modules":20,"battery":true}`

	ref := createSession(t, ts.URL, create)
	stepSession(t, ts.URL, ref.Session.ID, `{"cycle":"delivery","ticks":40}`)
	refCk := getCheckpoint(t, ts.URL, ref.Session.ID)

	split := createSession(t, ts.URL, create)
	stepSession(t, ts.URL, split.Session.ID, `{"cycle":"delivery","ticks":17}`)
	ck := getCheckpoint(t, ts.URL, split.Session.ID)

	// Restore on a second, fresh server — nothing but the checkpoint
	// payload crosses.
	_, ts2 := newTestServer(t, Config{})
	body, _ := json.Marshal(map[string]json.RawMessage{"from_checkpoint": ck})
	resp, b := postJSON(t, ts2.URL+"/v1/sessions", string(body))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("restore: %d %s", resp.StatusCode, b)
	}
	var restored sessionResponse
	if err := json.Unmarshal(b, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Session.Steps != 17 || restored.Session.Scheme != "DNOR" {
		t.Fatalf("restored summary: %+v", restored.Session)
	}
	stepSession(t, ts2.URL, restored.Session.ID, `{"cycle":"delivery","ticks":23}`)
	gotCk := getCheckpoint(t, ts2.URL, restored.Session.ID)
	if string(gotCk) != string(refCk) {
		t.Fatalf("restored twin's checkpoint differs from the uninterrupted one's:\nrestored: %.200s…\nreference: %.200s…", gotCk, refCk)
	}
}

// TestSessionCreateRejects pins the create path's validation.
func TestSessionCreateRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"missing scheme":         `{}`,
		"unknown scheme":         `{"scheme":"nope"}`,
		"bad modules":            `{"scheme":"inor","modules":100000}`,
		"checkpoint plus fields": `{"scheme":"inor","from_checkpoint":{"version":1}}`,
		"garbage checkpoint":     `{"from_checkpoint":{"not":"a checkpoint"}}`,
	} {
		resp, b := postJSON(t, ts.URL+"/v1/sessions", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d %s", name, resp.StatusCode, b)
		}
	}

	// A wrong-version checkpoint must be rejected naming the version
	// actually found.
	resp, b := postJSON(t, ts.URL+"/v1/sessions", `{"from_checkpoint":{"version":9,"checkpoint":{}}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("version 9 checkpoint: %d %s", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), "version 9") {
		t.Fatalf("error does not name the found version: %s", b)
	}
}

// TestSessionStepRejects pins the step path's validation.
func TestSessionStepRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxTicksPerJob: 50})
	id := createSession(t, ts.URL, `{"scheme":"baseline","modules":10}`).Session.ID
	for name, body := range map[string]string{
		"no source":         `{}`,
		"two sources":       `{"cycle":"delivery","csv":"t,x\n0,1\n"}`,
		"ticks with conds":  `{"conditions":[{"coolant_inlet_c":90,"coolant_flow_kgs":0.1,"air_inlet_c":25,"air_flow_kgs":0.4}],"ticks":2}`,
		"over tick limit":   `{"cycle":"delivery","ticks":51}`,
		"unknown cycle":     `{"cycle":"nope"}`,
		"invalid condition": `{"conditions":[{"coolant_inlet_c":-500,"coolant_flow_kgs":0.1,"air_inlet_c":25,"air_flow_kgs":0.4}]}`,
		"bad csv":           `{"csv":"not a trace"}`,
	} {
		resp, b := postJSON(t, ts.URL+"/v1/sessions/"+id+"/step", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d %s", name, resp.StatusCode, b)
		}
	}
	resp, b := postJSON(t, ts.URL+"/v1/sessions/tw-none/step", `{"cycle":"delivery"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: %d %s", resp.StatusCode, b)
	}
}

// TestSessionRestoreDrawBounds pins the two guards on a checkpoint's
// claimed RNG position — the restore cost an attacker controls:
// rng_draws over the server's absolute MaxRestoreDraws cap is refused
// before any replay work, and a forged position beyond what the
// checkpoint's own steps×modules can explain is rejected by the sim
// layer even when it is under the cap.
func TestSessionRestoreDrawBounds(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, `{"scheme":"baseline","modules":10}`).Session.ID
	stepSession(t, ts.URL, id, `{"cycle":"delivery","ticks":4}`) // 40 genuine draws
	ck := getCheckpoint(t, ts.URL, id)
	body, _ := json.Marshal(map[string]json.RawMessage{"from_checkpoint": ck})

	_, ts2 := newTestServer(t, Config{MaxRestoreDraws: 10})
	resp, b := postJSON(t, ts2.URL+"/v1/sessions", string(body))
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(b), "restore cap") {
		t.Fatalf("over-cap restore: %d %s", resp.StatusCode, b)
	}

	var env map[string]any
	if err := json.Unmarshal(ck, &env); err != nil {
		t.Fatal(err)
	}
	env["checkpoint"].(map[string]any)["rng_draws"] = 999999.0
	forged, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = json.Marshal(map[string]json.RawMessage{"from_checkpoint": forged})
	resp, b = postJSON(t, ts.URL+"/v1/sessions", string(body))
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(b), "exceeds") {
		t.Fatalf("forged rng position: %d %s", resp.StatusCode, b)
	}
}

// TestSessionConcurrentCycleStepContiguity pins the drive-source
// contiguity contract under contention: concurrent cycle batches on one
// session must sample the source at the clock position their steps
// actually run from (one continuous hold of the session lock), so any
// interleaving of 8×5-tick batches lands on the same state as one
// sequential 40-tick walk — checkpoint-for-checkpoint identical.
func TestSessionConcurrentCycleStepContiguity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const create = `{"scheme":"inor","modules":10}`
	ref := createSession(t, ts.URL, create).Session.ID
	stepSession(t, ts.URL, ref, `{"cycle":"delivery","ticks":40}`)
	refCk := getCheckpoint(t, ts.URL, ref)

	id := createSession(t, ts.URL, create).Session.ID
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sessions/"+id+"/step",
				"application/json", strings.NewReader(`{"cycle":"delivery","ticks":5}`))
			if err != nil {
				errs <- err.Error()
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("step: %d %s", resp.StatusCode, b)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if gotCk := getCheckpoint(t, ts.URL, id); string(gotCk) != string(refCk) {
		t.Fatalf("concurrent batches diverged from the sequential walk:\nconcurrent: %.200s…\nsequential: %.200s…", gotCk, refCk)
	}
}

// TestSessionRegistryCapAndEviction pins the registry bounds: creates
// beyond MaxSessions shed with 503, and idle sessions are evicted on
// the next create, freeing their slots.
func TestSessionRegistryCapAndEviction(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxSessions: 2, SessionIdleTTL: 50 * time.Millisecond})
	a := createSession(t, ts.URL, `{"scheme":"baseline","modules":10}`)
	createSession(t, ts.URL, `{"scheme":"baseline","modules":10}`)

	resp, b := postJSON(t, ts.URL+"/v1/sessions", `{"scheme":"baseline","modules":10}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create over cap: %d %s", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// Past the TTL both idle sessions are evicted by the next create's
	// sweep, so it succeeds — and the old ids are gone.
	time.Sleep(60 * time.Millisecond)
	createSession(t, ts.URL, `{"scheme":"baseline","modules":10}`)
	gresp, err := http.Get(ts.URL + "/v1/sessions/" + a.Session.ID)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session answered %d, want 404", gresp.StatusCode)
	}
	if st := srv.Stats(); st.SessionsEvicted < 2 || st.TwinSessions != 1 {
		t.Fatalf("eviction accounting: %+v", st)
	}
}

// TestSessionDrainSeal pins the drain semantics: a draining server
// refuses further steps (the twin is sealed) but still serves the
// session's summary and checkpoint, so clients can move their state
// off the instance during the grace window.
func TestSessionDrainSeal(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	sr := createSession(t, ts.URL, `{"scheme":"ehtr","modules":10}`)
	stepSession(t, ts.URL, sr.Session.ID, `{"cycle":"delivery","ticks":5}`)

	srv.Drain()

	resp, b := postJSON(t, ts.URL+"/v1/sessions/"+sr.Session.ID+"/step", `{"cycle":"delivery"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("step while draining: %d %s", resp.StatusCode, b)
	}
	ck := getCheckpoint(t, ts.URL, sr.Session.ID)
	if !strings.Contains(string(ck), `"version":1`) {
		t.Fatalf("checkpoint unavailable while draining: %.120s", ck)
	}
	gresp, err := http.Get(ts.URL + "/v1/sessions/" + sr.Session.ID)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("summary while draining: %d", gresp.StatusCode)
	}
	resp, b = postJSON(t, ts.URL+"/v1/sessions", `{"scheme":"baseline","modules":10}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: %d %s", resp.StatusCode, b)
	}
}

// TestSessionConcurrentStepAndMarshal is the -race regression for the
// result-aliasing fix: one goroutine steps the session in small
// batches while others hammer the summary and checkpoint endpoints,
// which marshal the (cloned) result. Before Result().Clone() the
// marshal walked the same Ticks slice the stepper was appending to.
func TestSessionConcurrentStepAndMarshal(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, `{"scheme":"inor","modules":10,"ticks":true}`).Session.ID

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			stepSession(t, ts.URL, id, `{"cycle":"delivery","ticks":5}`)
		}
		close(stop)
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				getCheckpoint(t, ts.URL, id)
				resp, err := http.Get(ts.URL + "/v1/sessions/" + id)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
}

// TestRetryAfterDerivation pins the 503 Retry-After contract under a
// saturated queue: the advice is queue depth × p90 job time from the
// latency histogram, clamped to [1, 30] — not the old hardcoded 1 s.
func TestRetryAfterDerivation(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueued: -1, MaxSessions: 4})

	// Teach the server a single 2 s job and fake a 10-deep queue. The
	// observation lands in the (1, 2.5] histogram bucket, where the p90
	// interpolates to 1 + 0.9×1.5 = 2.35 s, so the derivation should
	// advise ceil(10 × 2.35) = 24 s.
	srv.met.observeJob(2 * time.Second)
	srv.q.waiting.Add(10)
	if got := srv.retryAfterSeconds(); got != 24 {
		t.Fatalf("retryAfterSeconds() = %d, want 24", got)
	}
	// Clamps: a huge backlog caps at 30 s, an empty queue floors at 1 s.
	srv.q.waiting.Add(100)
	if got := srv.retryAfterSeconds(); got != 30 {
		t.Fatalf("deep-queue advice = %d, want 30", got)
	}
	srv.q.waiting.Add(-110)
	if got := srv.retryAfterSeconds(); got != 1 {
		t.Fatalf("empty-queue advice = %d, want 1", got)
	}

	// End to end: saturate the single execution slot so a step request
	// is shed, and check the header carries the derived value.
	srv.q.waiting.Add(5) // 5 waiters × 2.35 s p90 → 12 s advice
	if err := srv.q.acquire(t.Context()); err != nil {
		t.Fatal(err)
	}
	defer func() { srv.q.waiting.Add(-5); srv.q.release() }()

	id := createSession(t, ts.URL, `{"scheme":"baseline","modules":10}`).Session.ID
	resp, b := postJSON(t, ts.URL+"/v1/sessions/"+id+"/step", `{"cycle":"delivery"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("step with saturated queue: %d %s", resp.StatusCode, b)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	// The live header sees depth 5 (+ this request's own brief wait):
	// anything in [10, 30] proves the derivation ran; exactly 1 with a
	// 2.35 s p90 and 5 waiters would be the old hardcoded bug.
	if ra < 10 || ra > 30 {
		t.Fatalf("Retry-After = %d, want the derived 10..30", ra)
	}
}

// TestSessionCycleExhaustion pins the drive-source clock contract: a
// twin that has walked past the end of a cycle gets a 400, not a 500.
func TestSessionCycleExhaustion(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxTicksPerJob: 2000})
	id := createSession(t, ts.URL, `{"scheme":"baseline","modules":10}`).Session.ID
	// The delivery cycle is short; walk to its end, then one more.
	sr := stepSession(t, ts.URL, id, fmt.Sprintf(`{"cycle":"delivery","ticks":%d}`, 1200))
	resp, b := postJSON(t, ts.URL+"/v1/sessions/"+id+"/step", `{"cycle":"delivery","ticks":2000}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stepping past the cycle end: %d %s (twin at %g s)", resp.StatusCode, b, sr.Session.NowS)
	}
}
