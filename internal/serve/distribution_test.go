// Tests for the distributed serve tier: the shard-merge bit-exactness
// property, coordinator/worker byte-identity over real HTTP, and the
// fault-injection suite (a peer dying mid-shard must never change a
// byte of the final envelope).

package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"tegrecon/internal/experiments"
	"tegrecon/internal/scenario"
	"tegrecon/internal/store"
)

func openTestStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// testCellHash makes a syntactically valid content key for cache/store
// tests that do not go through the canonical request hasher.
func testCellHash(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// distMatrix is the sharding workload: 2 schemes × 3 ambients = 6
// cells, each a 6 s urban synth run on a 20-module rig — small enough
// to recompute many times, wide enough for non-trivial partitions and
// marginals on two axes.
func distMatrix() *scenario.Matrix {
	return &scenario.Matrix{
		Name:         "dist",
		MaxDurationS: 6,
		Cycles:       []scenario.CycleSpec{{Synth: &scenario.SynthSpec{Profile: "urban", Seed: 9, DurationS: 6}}},
		Schemes:      []string{"INOR", "DNOR"},
		Ambients:     []scenario.AmbientSpec{{AmbientC: 15}, {AmbientC: 25}, {AmbientC: 35}},
		ArraySizes:   []int{20},
	}
}

const distMatrixJSON = `{"name":"dist","max_duration_s":6,
	"cycles":[{"synth":{"profile":"urban","seed":9,"duration_s":6}}],
	"schemes":["INOR","DNOR"],
	"ambients":[{"ambient_c":15},{"ambient_c":25},{"ambient_c":35}],
	"array_sizes":[20]}`

const distSweepJSON = `{"cycles":["wltc","delivery","nedc"],"schemes":["inor","dnor"],
	"max_duration_s":6,"modules":20}`

// TestShardMergePropertyByteIdentity is the soundness property the
// whole distribution tier rests on, checked at the engine level: for
// random partitions of an expansion into shards, running each shard
// via Subset (at varying worker counts, in shuffled shard order) and
// merging by cell index reproduces the serial full-grid envelope —
// cells and marginals — byte-identically.
func TestShardMergePropertyByteIdentity(t *testing.T) {
	m := distMatrix()
	n, err := m.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	counts, err := n.Counts()
	if err != nil {
		t.Fatal(err)
	}
	p := matrixParams{m: n, counts: counts}
	ex, err := n.Expand()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Serial baseline: the whole grid on one worker.
	res, err := experiments.RunExpansionContext(ctx, ex, experiments.MatrixOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := marshalMatrixEnvelope(p, res.Cells)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		// Random partition: shuffle the cell indices, cut at random
		// points, shuffle the shard execution order.
		idxs := rng.Perm(len(ex.Cells))
		var shards [][]int
		for lo := 0; lo < len(idxs); {
			hi := lo + 1 + rng.Intn(len(idxs)-lo)
			shards = append(shards, idxs[lo:hi])
			lo = hi
		}
		rng.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })

		cells := make([]experiments.MatrixCell, len(ex.Cells))
		for _, shard := range shards {
			sub, err := ex.Subset(shard)
			if err != nil {
				t.Fatal(err)
			}
			sres, err := experiments.RunExpansionContext(ctx, sub, experiments.MatrixOptions{Workers: 1 + rng.Intn(4)})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range sres.Cells {
				cells[c.Index] = c // Subset preserves full-grid indices
			}
		}
		merged, err := marshalMatrixEnvelope(p, cells)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(baseline, merged) {
			t.Fatalf("trial %d: merged envelope differs from serial baseline\npartition: %v", trial, shards)
		}
	}
}

// newWorkerFleet boots n plain worker servers and returns their base
// URLs plus the servers (for stats assertions).
func newWorkerFleet(t *testing.T, n int) ([]string, []*Server) {
	t.Helper()
	urls := make([]string, n)
	servers := make([]*Server, n)
	for i := range urls {
		s, ts := newTestServer(t, Config{})
		urls[i], servers[i] = ts.URL, s
	}
	return urls, servers
}

// TestCoordinatorShardedMatrixByteIdentity: a matrix sharded across
// two real worker processes (httptest servers with their own queues,
// caches and batch pools) returns an envelope byte-identical to a
// single-process run — and the coordinator simulates nothing itself.
func TestCoordinatorShardedMatrixByteIdentity(t *testing.T) {
	_, tsSingle := newTestServer(t, Config{})
	_, bodySingle := postJSON(t, tsSingle.URL+"/v1/matrix", distMatrixJSON)

	peers, workers := newWorkerFleet(t, 2)
	coord, tsCoord := newTestServer(t, Config{WorkerPeers: peers})
	resp, body := postJSON(t, tsCoord.URL+"/v1/matrix", distMatrixJSON)
	if resp.StatusCode != 200 {
		t.Fatalf("coordinator: %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, bodySingle) {
		t.Fatal("sharded envelope differs from the single-process run")
	}

	st := coord.Stats()
	if st.ShardsDispatched < 2 {
		t.Fatalf("coordinator dispatched %d shards, want >= 2", st.ShardsDispatched)
	}
	if st.ShardRetries != 0 {
		t.Fatalf("healthy fleet needed %d local retries", st.ShardRetries)
	}
	if st.Ticks != 0 {
		t.Fatalf("coordinator simulated %d ticks itself, want 0", st.Ticks)
	}
	var served, cells int64
	for _, w := range workers {
		ws := w.Stats()
		served += ws.ShardsServed
		cells += ws.MatrixCells
	}
	if served < 2 || cells != 6 {
		t.Fatalf("workers served %d shards / %d cells, want >=2 / 6", served, cells)
	}

	// Repeat through the coordinator: envelope-cache hit, same bytes.
	resp2, body2 := postJSON(t, tsCoord.URL+"/v1/matrix", distMatrixJSON)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body2, bodySingle) {
		t.Fatal("cached sharded envelope differs")
	}
}

// TestCoordinatorShardedSweepByteIdentity: the same contract for
// /v1/sweeps — cycle shards merged in request order match the
// single-process table byte for byte.
func TestCoordinatorShardedSweepByteIdentity(t *testing.T) {
	_, tsSingle := newTestServer(t, Config{})
	_, bodySingle := postJSON(t, tsSingle.URL+"/v1/sweeps", distSweepJSON)

	peers, workers := newWorkerFleet(t, 2)
	coord, tsCoord := newTestServer(t, Config{WorkerPeers: peers})
	resp, body := postJSON(t, tsCoord.URL+"/v1/sweeps", distSweepJSON)
	if resp.StatusCode != 200 {
		t.Fatalf("coordinator: %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first sweep X-Cache = %q, want miss", got)
	}
	if !bytes.Equal(body, bodySingle) {
		t.Fatal("sharded sweep differs from the single-process run")
	}
	if st := coord.Stats(); st.Ticks != 0 || st.ShardsDispatched < 2 {
		t.Fatalf("coordinator ticks=%d shards=%d, want 0 / >=2", st.Ticks, st.ShardsDispatched)
	}
	var ticks int64
	for _, w := range workers {
		ticks += w.Stats().Ticks
	}
	if ticks == 0 {
		t.Fatal("no worker simulated anything")
	}

	resp2, body2 := postJSON(t, tsCoord.URL+"/v1/sweeps", distSweepJSON)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body2, bodySingle) {
		t.Fatal("cached sharded sweep differs")
	}
}

// abortingPeer is the injectable failing worker: every /v1/shards
// request starts a plausible 200 response and then kills the
// connection mid-body — exactly what a worker process dying mid-shard
// looks like from the coordinator's side of the socket.
func abortingPeer(t *testing.T, hits *int64) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/shards" {
			http.NotFound(w, r)
			return
		}
		*hits++
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"cells":[{"index":`))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler) // sever the connection mid-response
	}))
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestCoordinatorRetriesKilledShardLocally is the fault-injection
// suite: one healthy worker, one peer that dies mid-shard on every
// request. The coordinator must absorb the failure by recomputing the
// dead peer's shards locally, and both the matrix and sweep envelopes
// must be byte-identical to an undisturbed single-process run.
func TestCoordinatorRetriesKilledShardLocally(t *testing.T) {
	_, tsSingle := newTestServer(t, Config{})
	_, matrixSingle := postJSON(t, tsSingle.URL+"/v1/matrix", distMatrixJSON)
	_, sweepSingle := postJSON(t, tsSingle.URL+"/v1/sweeps", distSweepJSON)

	var aborted int64
	goodPeers, _ := newWorkerFleet(t, 1)
	bad := abortingPeer(t, &aborted)
	coord, tsCoord := newTestServer(t, Config{WorkerPeers: []string{goodPeers[0], bad}})

	resp, body := postJSON(t, tsCoord.URL+"/v1/matrix", distMatrixJSON)
	if resp.StatusCode != 200 {
		t.Fatalf("matrix through flaky fleet: %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, matrixSingle) {
		t.Fatal("matrix envelope changed after a worker died mid-shard")
	}
	resp, body = postJSON(t, tsCoord.URL+"/v1/sweeps", distSweepJSON)
	if resp.StatusCode != 200 {
		t.Fatalf("sweep through flaky fleet: %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, sweepSingle) {
		t.Fatal("sweep envelope changed after a worker died mid-shard")
	}

	st := coord.Stats()
	if aborted == 0 {
		t.Fatal("the failing peer was never asked for a shard")
	}
	if st.ShardRetries == 0 {
		t.Fatal("no shard was retried locally")
	}
	if st.Ticks == 0 {
		t.Fatal("local retry did not simulate (who computed the dead shards?)")
	}
}

// TestCoordinatorAllPeersDead: with every peer unreachable the
// coordinator degrades to a slower single process, not an error.
func TestCoordinatorAllPeersDead(t *testing.T) {
	_, tsSingle := newTestServer(t, Config{})
	_, bodySingle := postJSON(t, tsSingle.URL+"/v1/matrix", distMatrixJSON)

	// A listener that closed before the test: connection refused.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	coord, tsCoord := newTestServer(t, Config{WorkerPeers: []string{deadURL}})
	resp, body := postJSON(t, tsCoord.URL+"/v1/matrix", distMatrixJSON)
	if resp.StatusCode != 200 {
		t.Fatalf("coordinator with dead fleet: %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, bodySingle) {
		t.Fatal("locally recomputed envelope differs from the single-process run")
	}
	if st := coord.Stats(); st.ShardRetries == 0 {
		t.Fatalf("retries = %d, want > 0", st.ShardRetries)
	}
}

// TestShardEndpointValidation: the internal endpoint still speaks
// proper HTTP to confused or version-skewed callers.
func TestShardEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		wantStatus int
	}{
		{"unknown kind", `{"kind":"nope"}`, http.StatusBadRequest},
		{"matrix without spec", `{"kind":"matrix","cells":[0]}`, http.StatusBadRequest},
		{"matrix without cells", fmt.Sprintf(`{"kind":"matrix","matrix":%s}`, distMatrixJSON), http.StatusBadRequest},
		{"matrix cell out of range", fmt.Sprintf(`{"kind":"matrix","matrix":%s,"cells":[99]}`, distMatrixJSON), http.StatusBadRequest},
		{"sweep without body", `{"kind":"sweep"}`, http.StatusBadRequest},
		{"sweep bad cycle", `{"kind":"sweep","sweep":{"cycles":["nope"]}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/shards", tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, body)
			}
		})
	}
}

// TestShardEndpointComputesSubset: a worker answers a matrix shard
// with exactly the requested cells, indices preserved from the full
// expansion, and reuses its per-cell cache across overlapping shards.
func TestShardEndpointComputesSubset(t *testing.T) {
	w, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"kind":"matrix","matrix":%s,"cells":[1,4]}`, distMatrixJSON)
	resp, b := postJSON(t, ts.URL+"/v1/shards", body)
	if resp.StatusCode != 200 {
		t.Fatalf("%d: %s", resp.StatusCode, b)
	}
	var sr shardMatrixResponse
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Cells) != 2 || sr.Cells[0].Index != 1 || sr.Cells[1].Index != 4 {
		t.Fatalf("shard cells: %+v", sr.Cells)
	}
	if got := w.Stats().MatrixCells; got != 2 {
		t.Fatalf("worker simulated %d cells, want 2", got)
	}
	// An overlapping shard only simulates the new cell.
	body = fmt.Sprintf(`{"kind":"matrix","matrix":%s,"cells":[1,2]}`, distMatrixJSON)
	if resp, b = postJSON(t, ts.URL+"/v1/shards", body); resp.StatusCode != 200 {
		t.Fatalf("%d: %s", resp.StatusCode, b)
	}
	if got := w.Stats().MatrixCells; got != 3 {
		t.Fatalf("worker simulated %d cells after overlap, want 3", got)
	}
}
