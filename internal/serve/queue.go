package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// errQueueFull reports a job rejected at admission because the bounded
// wait queue is already at capacity — the server's load-shedding
// signal, surfaced to clients as 503 + Retry-After.
var errQueueFull = errors.New("serve: job queue full")

// queue is the bounded admission gate in front of the simulation
// engine: at most `slots` jobs execute at once, at most maxWait more
// may block waiting for a slot, and anything beyond that is rejected
// immediately. Rejecting at admission instead of queueing unboundedly
// is what keeps a traffic spike from turning into an OOM — the classic
// serving discipline the ROADMAP's scale story asks for.
type queue struct {
	slots   chan struct{}
	waiting atomic.Int64
	maxWait int64
}

func newQueue(workers, maxQueued int) *queue {
	return &queue{slots: make(chan struct{}, workers), maxWait: int64(maxQueued)}
}

// acquire claims an execution slot, blocking while the pool is full.
// It fails fast with errQueueFull when maxWait jobs are already
// blocked, and with ctx.Err() when the caller gives up first.
func (q *queue) acquire(ctx context.Context) error {
	// Fast path: free slot, no waiting.
	select {
	case q.slots <- struct{}{}:
		return nil
	default:
	}
	if q.waiting.Add(1) > q.maxWait {
		q.waiting.Add(-1)
		return errQueueFull
	}
	defer q.waiting.Add(-1)
	select {
	case q.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot claimed by acquire.
func (q *queue) release() { <-q.slots }

// depth reports how many jobs are blocked waiting for a slot.
func (q *queue) depth() int64 { return q.waiting.Load() }

// active reports how many jobs hold execution slots right now.
func (q *queue) active() int { return len(q.slots) }
