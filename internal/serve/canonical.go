package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"strings"

	"tegrecon/internal/scenario"
)

// Content addressing: every cacheable request reduces to a canonical
// string — normalized fields in a fixed order, floats in Go's exact
// hexadecimal form so no two distinct values share a spelling — whose
// SHA-256 keys the result cache. Requests that differ only in surface
// form (scheme name case, an explicit duration equal to the cycle's
// full length) normalize to the same string, so they share one cache
// entry; any physically meaningful difference changes the hash.

// keyVersion tags the canonical form itself: bump it whenever the
// encoding or the physics behind it changes, and every stale cache key
// simply stops matching.
const keyVersion = "tegserve/v1"

type keyBuilder struct{ b strings.Builder }

func (k *keyBuilder) str(name, v string)            { k.b.WriteString("|" + name + "=" + v) }
func (k *keyBuilder) strs(name string, vs []string) { k.str(name, strings.Join(vs, ",")) }
func (k *keyBuilder) num(name string, v float64) {
	// 'x' is the hexadecimal floating-point form: exact, canonical and
	// locale-free. 0.1 encodes as 0x1.999999999999ap-04, never a rounded
	// decimal that could collide with a neighbouring value.
	k.str(name, strconv.FormatFloat(v, 'x', -1, 64))
}
func (k *keyBuilder) int(name string, v int64) { k.str(name, strconv.FormatInt(v, 10)) }
func (k *keyBuilder) bool(name string, v bool) { k.str(name, strconv.FormatBool(v)) }

func (k *keyBuilder) sum() string {
	h := sha256.Sum256([]byte(k.b.String()))
	return hex.EncodeToString(h[:])
}

// runKey hashes a normalized run request.
func runKey(p runParams) string {
	var k keyBuilder
	k.b.WriteString(keyVersion + "/run")
	k.str("cycle", p.cycle.Name)
	k.str("scheme", p.scheme.Name)
	k.num("duration_s", p.durationS)
	k.num("tick_s", p.tickS)
	k.num("noise_c", p.noiseC)
	k.int("seed", p.seed)
	k.int("modules", int64(p.modules))
	k.int("horizon", int64(p.horizon))
	k.bool("battery", p.battery)
	k.bool("det_runtime", p.detRuntime)
	k.bool("ticks", p.keepTicks)
	return k.sum()
}

// cellKey hashes one scenario-matrix cell. The cell coordinate is
// already canonical and collision-free by construction — scenario
// encodes every axis value (ambient, fault seed offsets, synth-cycle
// parameters, CSV content hashes) hex-exactly into it — so the key
// only needs to add what the coordinate deliberately leaves out: the
// matrix-level run parameters (tick, noise, base seed, horizon) and
// the cell's effective duration, which a matrix-level duration cap can
// change without touching the coordinate. Keyed per cell, two matrices
// sharing a cell share its cached result.
func cellKey(p matrixParams, cell scenario.Cell) string {
	var k keyBuilder
	k.b.WriteString(keyVersion + "/cell")
	k.num("tick_s", p.m.TickS)
	k.num("noise_c", *p.m.SensorNoiseC)
	k.int("seed", p.m.Seed)
	k.int("horizon", int64(p.m.HorizonTicks))
	k.num("dur_s", cell.DurationS)
	k.str("coord", cell.Coord)
	return k.sum()
}

// sweepKey hashes a normalized sweep request. Cycle and scheme order
// matter — they shape the response matrix — so they are part of the
// identity, not sorted away. The duration cap enters as each cycle's
// effective span, not the raw cap: a cap past every schedule end is
// physically the same sweep as no cap at all and must share its key.
func sweepKey(p sweepParams) string {
	var k keyBuilder
	k.b.WriteString(keyVersion + "/sweep")
	names := make([]string, len(p.cycles))
	for i, c := range p.cycles {
		names[i] = c.Name
		k.num("dur_"+c.Name, effectiveDuration(c, p.maxDurationS))
	}
	k.strs("cycles", names)
	k.strs("schemes", p.schemes)
	k.num("tick_s", p.tickS)
	k.num("noise_c", p.noiseC)
	k.int("seed", p.seed)
	k.int("modules", int64(p.modules))
	k.int("horizon", int64(p.horizon))
	return k.sum()
}
