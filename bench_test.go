// Benchmark harness: one benchmark per table and figure of the paper
// (see DESIGN.md §4 for the experiment index), plus micro-benchmarks of
// the algorithmic kernels. Run with:
//
//	go test -bench=. -benchmem
package tegrecon

import (
	"math"
	"testing"

	"tegrecon/internal/array"
	"tegrecon/internal/core"
	"tegrecon/internal/drive"
	"tegrecon/internal/experiments"
	"tegrecon/internal/predict"
	"tegrecon/internal/sim"
	"tegrecon/internal/teg"
	"tegrecon/internal/thermal"
)

// benchSetup builds a Section VI setup over a shortened trace so each
// benchmark iteration stays tractable.
func benchSetup(b *testing.B, seconds float64) *experiments.Setup {
	b.Helper()
	s, err := experiments.DefaultSetup()
	if err != nil {
		b.Fatal(err)
	}
	cfg := drive.DefaultSynthConfig()
	cfg.Duration = seconds
	tr, err := drive.Synthesize(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.Trace = tr
	return s
}

// BenchmarkFig1ModuleCurves regenerates the Fig. 1 I–V / P–V family.
func BenchmarkFig1ModuleCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1ModuleCurves(teg.TGM199, 25, 101); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Prediction regenerates the Fig. 5 MLR/BPNN/SVR error
// comparison over a 120 s excerpt.
func BenchmarkFig5Prediction(b *testing.B) {
	s := benchSetup(b, 120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5PredictionError(s, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6PowerSeries regenerates the Fig. 6 four-scheme power
// series over the 120 s window.
func BenchmarkFig6PowerSeries(b *testing.B) {
	s := benchSetup(b, 160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6PowerSeries(s, 20, 140); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7PowerRatio regenerates the Fig. 7 ratio view (same runs
// as Fig. 6 plus the normalisation pass).
func BenchmarkFig7PowerRatio(b *testing.B) {
	s := benchSetup(b, 160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6PowerSeries(s, 20, 140)
		if err != nil {
			b.Fatal(err)
		}
		if got := res.RatioSeries(); len(got) != 4 {
			b.Fatal("missing scheme")
		}
	}
}

// benchTableIScheme times one Table I column over a 60 s excerpt.
func benchTableIScheme(b *testing.B, build func(*experiments.Setup) (core.Controller, error)) {
	b.Helper()
	s := benchSetup(b, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl, err := build(s)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(s.Sys, s.Trace, ctrl, s.Opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.EnergyOutJ <= 0 {
			b.Fatal("no energy harvested")
		}
	}
}

// BenchmarkTableI_DNOR times the DNOR column of Table I.
func BenchmarkTableI_DNOR(b *testing.B) {
	benchTableIScheme(b, func(s *experiments.Setup) (core.Controller, error) { return s.NewDNOR() })
}

// BenchmarkTableI_INOR times the INOR column of Table I.
func BenchmarkTableI_INOR(b *testing.B) {
	benchTableIScheme(b, func(s *experiments.Setup) (core.Controller, error) { return s.NewINOR() })
}

// BenchmarkTableI_EHTR times the EHTR column of Table I.
func BenchmarkTableI_EHTR(b *testing.B) {
	benchTableIScheme(b, func(s *experiments.Setup) (core.Controller, error) { return s.NewEHTR() })
}

// BenchmarkTableI_Baseline times the static-baseline column of Table I.
func BenchmarkTableI_Baseline(b *testing.B) {
	benchTableIScheme(b, func(s *experiments.Setup) (core.Controller, error) { return s.NewBaseline() })
}

// decayTemps builds the synthetic radiator profile used by the kernel
// benchmarks.
func decayTemps(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 38 + 54*math.Exp(-3*float64(i)/float64(n))
	}
	return out
}

// benchDecide times a single controller invocation at array size n —
// the Ext-A scaling study (Table I "Average Runtime" and the O(N) vs
// O(N³) claim).
func benchDecide(b *testing.B, n int, ehtr bool) {
	b.Helper()
	sys := sim.DefaultSystem()
	eval, err := core.NewEvaluator(sys.Spec, sys.Conv)
	if err != nil {
		b.Fatal(err)
	}
	var ctrl core.Controller
	if ehtr {
		ctrl, err = core.NewEHTR(eval)
	} else {
		ctrl, err = core.NewINOR(eval)
	}
	if err != nil {
		b.Fatal(err)
	}
	temps := decayTemps(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctrl.Decide(i, temps, 25); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalingINOR_N100 …N800 sweep the O(N) algorithm.
func BenchmarkScalingINOR_N100(b *testing.B) { benchDecide(b, 100, false) }

// BenchmarkScalingINOR_N400 is the 400-module point.
func BenchmarkScalingINOR_N400(b *testing.B) { benchDecide(b, 400, false) }

// BenchmarkScalingINOR_N800 is the 800-module point.
func BenchmarkScalingINOR_N800(b *testing.B) { benchDecide(b, 800, false) }

// BenchmarkScalingEHTR_N100 …N400 sweep the O(N³) reconstruction.
func BenchmarkScalingEHTR_N100(b *testing.B) { benchDecide(b, 100, true) }

// BenchmarkScalingEHTR_N200 is the 200-module point.
func BenchmarkScalingEHTR_N200(b *testing.B) { benchDecide(b, 200, true) }

// BenchmarkScalingEHTR_N400 is the 400-module point.
func BenchmarkScalingEHTR_N400(b *testing.B) { benchDecide(b, 400, true) }

// BenchmarkHorizonAblation runs the Ext-B tp sweep over a short trace.
func BenchmarkHorizonAblation(b *testing.B) {
	s := benchSetup(b, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HorizonAblation(s, []int{1, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMLRObservePredict times one control tick of the paper's
// selected predictor on a 100-module distribution.
func BenchmarkMLRObservePredict(b *testing.B) {
	mlr, err := predict.NewMLR(predict.DefaultMLROptions())
	if err != nil {
		b.Fatal(err)
	}
	temps := decayTemps(100)
	// Warm up past Ready.
	for i := 0; i < 10; i++ {
		if err := mlr.Observe(temps); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mlr.Observe(temps); err != nil {
			b.Fatal(err)
		}
		if _, err := mlr.Predict(4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArrayEquivalent times the per-candidate equivalent-circuit
// evaluation that dominates the inner loop of both INOR and EHTR.
func BenchmarkArrayEquivalent(b *testing.B) {
	arr, err := array.New(teg.TGM199, teg.OpsFromTemps(decayTemps(100), 25))
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := array.Uniform(100, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arr.Equivalent(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluatorBest times the converter-weighted MPP search used
// to price every candidate configuration.
func BenchmarkEvaluatorBest(b *testing.B) {
	sys := sim.DefaultSystem()
	eval, err := core.NewEvaluator(sys.Spec, sys.Conv)
	if err != nil {
		b.Fatal(err)
	}
	arr, err := array.New(sys.Spec, teg.OpsFromTemps(decayTemps(100), 25))
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := array.Uniform(100, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Best(arr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchConditions interpolates every control period's radiator boundary
// conditions from a trace up front, so a Step benchmark measures only
// the engine's own loop body.
func benchConditions(b *testing.B, s *experiments.Setup) []thermal.Conditions {
	b.Helper()
	ticks := int(s.Trace.Duration()/s.Opts.TickSeconds) + 1
	conds := make([]thermal.Conditions, ticks)
	for k := range conds {
		cond, err := drive.ConditionsAt(s.Trace, s.Trace.Times[0]+float64(k)*s.Opts.TickSeconds)
		if err != nil {
			b.Fatal(err)
		}
		conds[k] = cond
	}
	return conds
}

// BenchmarkSessionStep measures one steady-state control period of the
// incremental engine in streaming mode (KeepTicks off). The allocation
// count is the acceptance gate: a steady-state Step allocates nothing
// (the per-session scratch holds every buffer the tick loop needs), and
// cmd/tegbench enforces that floor against bench_budget.json on every
// CI run. The warmup pass grows the scratch to the largest size the
// drive demands so the measurement sees pure steady state.
func BenchmarkSessionStep(b *testing.B) {
	s := benchSetup(b, 60)
	conds := benchConditions(b, s)
	ctrl, err := s.NewINOR()
	if err != nil {
		b.Fatal(err)
	}
	opts := s.Opts
	opts.DeterministicRuntime = true
	opts.KeepTicks = false
	sess, err := sim.NewSession(s.Sys, ctrl, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, cond := range conds { // warmup: grow all scratch buffers
		if _, err := sess.Step(cond); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Step(conds[i%len(conds)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunVsSession compares the batch trace-replay wrapper against
// a hand-stepped session over the same 60 s drive — the overhead of the
// incremental API relative to the monolithic loop it replaced.
func BenchmarkRunVsSession(b *testing.B) {
	s := benchSetup(b, 60)
	conds := benchConditions(b, s)
	opts := s.Opts
	opts.DeterministicRuntime = true
	b.Run("Run", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctrl, err := s.NewINOR()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(s.Sys, s.Trace, ctrl, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Session", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctrl, err := s.NewINOR()
			if err != nil {
				b.Fatal(err)
			}
			sess, err := sim.NewSession(s.Sys, ctrl, opts)
			if err != nil {
				b.Fatal(err)
			}
			for _, cond := range conds {
				if _, err := sess.Step(cond); err != nil {
					b.Fatal(err)
				}
			}
			if res := sess.Result(); res.EnergyOutJ <= 0 {
				b.Fatal("no energy harvested")
			}
		}
	})
}

// BenchmarkFaultStudy runs the Ext-E fault-tolerance study over a short
// trace.
func BenchmarkFaultStudy(b *testing.B) {
	s := benchSetup(b, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FaultStudy(s, 10, int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}
