#!/usr/bin/env bash
# Server smoke test: boot tegserve on a random port, exercise the API
# end to end with a real HTTP client (a short WLTC/EHTR run streamed
# over SSE must terminate with a summary event), check the metrics
# endpoint, verify SIGTERM drains the process cleanly (exit 0), and
# prove a digital-twin session survives the process: create -> step ->
# checkpoint -> kill -> restart -> restore -> step must land on the
# same summary an uninterrupted twin reaches.
#
# Then the distributed tier: a coordinator sharding a scenario matrix
# across two worker processes must produce bytes identical to a single
# process, keep doing so after a worker is killed -9 mid-sweep (local
# shard retry), and a sweep computed into a -store-dir must survive a
# SIGTERM restart as a disk hit with zero recomputation.
#
# Run from the repo root: ./scripts/serve_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
cleanup() {
  [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
  for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$workdir"
}
pids=()
trap cleanup EXIT

# boot <logfile> [flags...] — start tegserve on a random port (extra
# flags passed through) and set the $pid and $base globals once the
# listen line appears. Called directly (not in a command substitution)
# so the globals survive. JSON logs so the access-log assertions can
# grep structured fields.
boot() {
  local log=$1; shift
  "$workdir/tegserve" -addr 127.0.0.1:0 -log-format json "$@" >"$log" 2>&1 &
  pid=$!
  pids+=("$pid")
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*"msg":"listening".*"addr":"\([^"]*\)".*/\1/p' "$log" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "tegserve died:" >&2; cat "$log" >&2; exit 1; }
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "never saw listen line:" >&2; cat "$log" >&2; exit 1; }
  base="http://$addr"
}

# metric <base> <name> — read one gauge/counter value off /metrics.
metric() {
  curl -fsS "$1/metrics" | sed -n "s/^$2 //p"
}

# strip_volatile — drop the fields that legitimately differ between a
# restored twin and the original (session id, wall-clock age).
strip_volatile() {
  sed -E 's/"id":"[^"]*",?//g; s/,?"age_s":[0-9.eE+-]+//g'
}

echo "== building tegserve"
go build -o "$workdir/tegserve" ./cmd/tegserve

echo "== booting on a random port"
boot "$workdir/serve.log"
echo "   up at $base"

echo "== healthz"
curl -fsS "$base/healthz"; echo

echo "== registries"
curl -fsS "$base/v1/schemes" | grep -q '"DNOR"' || { echo "schemes missing DNOR"; exit 1; }
curl -fsS "$base/v1/cycles" | grep -q '"wltc"' || { echo "cycles missing wltc"; exit 1; }

echo "== short WLTC/EHTR run over SSE"
sse=$(curl -fsS -N -H 'Content-Type: application/json' \
  -d '{"cycle":"wltc","scheme":"ehtr","duration_s":10,"modules":40,"stream":true}' \
  "$base/v1/runs")
echo "$sse" | grep -q '^event: tick$' || { echo "no tick events:"; echo "$sse" | head -5; exit 1; }
echo "$sse" | grep -q '^event: summary$' || { echo "stream did not terminate with a summary event"; exit 1; }
echo "$sse" | grep -q '"version":1' || { echo "summary is not the versioned result schema"; exit 1; }
echo "   $(echo "$sse" | grep -c '^event: tick$') ticks + summary"

echo "== repeat run is a cache hit"
hit=$(curl -fsS -D - -o /dev/null -H 'Content-Type: application/json' \
  -d '{"cycle":"wltc","scheme":"ehtr","duration_s":10,"modules":40}' \
  "$base/v1/runs" | tr -d '\r' | sed -n 's/^X-Cache: //p')
[ "$hit" = "hit" ] || { echo "expected cache hit, got '$hit'"; exit 1; }

echo "== metrics"
metrics=$(curl -fsS "$base/metrics")
echo "$metrics" | grep '^tegserve_ticks_total ' || { echo "no tick counter"; exit 1; }
echo "$metrics" | grep '^tegserve_cache_hits_total 1$' >/dev/null || { echo "cache hit not counted"; exit 1; }

echo "== request-ID correlation: header echo + access log"
rid=$(curl -fsS -D - -o /dev/null -H 'X-Request-ID: test-123' "$base/healthz" \
  | tr -d '\r' | sed -n 's/^X-Request-Id: //Ip')
[ "$rid" = "test-123" ] || { echo "X-Request-ID echoed as '$rid', want test-123"; exit 1; }
grep -q '"request_id":"test-123"' "$workdir/serve.log" \
  || { echo "access log missing request_id test-123"; grep '"msg":"request"' "$workdir/serve.log" | tail -3; exit 1; }
echo "   test-123 on the response header and in the JSON access log"

echo "== phase timings"
curl -fsS "$base/v1/debug/phases" | grep -q '"sample_every"' || { echo "/v1/debug/phases missing sample_every"; exit 1; }

echo "== digital twin: create -> step -> checkpoint"
twin=$(curl -fsS -H 'Content-Type: application/json' \
  -d '{"scheme":"dnor","modules":40,"seed":3,"battery":true}' "$base/v1/sessions")
id=$(echo "$twin" | sed -n 's/.*"id":"\(tw-[^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "no session id in: $twin"; exit 1; }
curl -fsS -H 'Content-Type: application/json' \
  -d '{"cycle":"delivery","ticks":40}' "$base/v1/sessions/$id/step" >/dev/null
curl -fsS "$base/v1/sessions/$id/checkpoint" -o "$workdir/ck.json"
grep -q '"version":1' "$workdir/ck.json" || { echo "checkpoint is not the versioned schema"; exit 1; }
echo "   twin $id checkpointed at step 40 ($(wc -c <"$workdir/ck.json") bytes)"

# Run the original twin to step 60 before the server dies: this is the
# uninterrupted reference the restored twin must match.
curl -fsS -H 'Content-Type: application/json' \
  -d '{"cycle":"delivery","ticks":20}' "$base/v1/sessions/$id/step" >/dev/null
ref=$(curl -fsS "$base/v1/sessions/$id" | strip_volatile)

echo "== graceful drain on SIGTERM"
kill -TERM "$pid"
wait "$pid" || { echo "tegserve exited nonzero"; cat "$workdir/serve.log"; exit 1; }
grep -q "drained cleanly" "$workdir/serve.log" || { echo "no clean-drain log line"; cat "$workdir/serve.log"; exit 1; }
pid=""

echo "== restart: restore the twin from its checkpoint"
boot "$workdir/serve2.log"
echo "   replacement up at $base"
restored=$(curl -fsS -H 'Content-Type: application/json' \
  -d "{\"from_checkpoint\": $(cat "$workdir/ck.json")}" "$base/v1/sessions")
id2=$(echo "$restored" | sed -n 's/.*"id":"\(tw-[^"]*\)".*/\1/p')
[ -n "$id2" ] || { echo "restore failed: $restored"; exit 1; }
echo "$restored" | grep -q '"steps":40' || { echo "restored twin not at step 40: $restored"; exit 1; }

curl -fsS -H 'Content-Type: application/json' \
  -d '{"cycle":"delivery","ticks":20}' "$base/v1/sessions/$id2/step" >/dev/null
got=$(curl -fsS "$base/v1/sessions/$id2" | strip_volatile)
if [ "$got" != "$ref" ]; then
  echo "restored twin diverged from the uninterrupted reference:"
  echo "  want: $ref"
  echo "  got:  $got"
  exit 1
fi
echo "   restored twin replayed to step 60: summary identical"

kill -TERM "$pid"
wait "$pid" || { echo "second tegserve exited nonzero"; cat "$workdir/serve2.log"; exit 1; }
pid=""

echo "== distributed tier: coordinator + two workers"
matrix='{"cycles":[{"synth":{"profile":"urban","seed":9,"duration_s":6}}],"schemes":["INOR","DNOR"],"ambients":[{"ambient_c":15},{"ambient_c":25},{"ambient_c":35}],"array_sizes":[20],"max_duration_s":6}'
boot "$workdir/worker1.log"; w1_pid=$pid; w1_base=$base
boot "$workdir/worker2.log"; w2_pid=$pid; w2_base=$base
boot "$workdir/coord.log" -worker-peers "$w1_base,$w2_base"
coord_pid=$pid; coord_base=$base
pid=""
echo "   workers $w1_base $w2_base, coordinator $coord_base"

curl -fsS -H 'Content-Type: application/json' -d "$matrix" \
  "$coord_base/v1/matrix" -o "$workdir/sharded.json"
dispatched=$(metric "$coord_base" tegserve_shards_dispatched_total)
[ "${dispatched:-0}" -ge 2 ] || { echo "coordinator dispatched $dispatched shards, want >= 2"; exit 1; }
coord_ticks=$(metric "$coord_base" tegserve_ticks_total)
[ "$coord_ticks" = "0" ] || { echo "coordinator simulated $coord_ticks ticks itself"; exit 1; }

boot "$workdir/single.log"; single_pid=$pid; single_base=$base; pid=""
curl -fsS -H 'Content-Type: application/json' -d "$matrix" \
  "$single_base/v1/matrix" -o "$workdir/single.json"
cmp "$workdir/sharded.json" "$workdir/single.json" \
  || { echo "sharded matrix differs from the single-process bytes"; exit 1; }
echo "   $dispatched shards across 2 workers: bytes identical to a single process"

echo "== kill one worker -9: coordinator retries the shard locally"
kill -9 "$w2_pid"
wait "$w2_pid" 2>/dev/null || true
matrix2='{"cycles":[{"synth":{"profile":"urban","seed":9,"duration_s":6}}],"schemes":["INOR","DNOR"],"ambients":[{"ambient_c":10},{"ambient_c":20}],"array_sizes":[20],"max_duration_s":60}'
# The surviving worker is killed -9 a beat later, while its shard is
# (plausibly) still in flight; the dead-peer shard guarantees at least
# one local retry either way, and the bytes must not change.
( sleep 0.1; kill -9 "$w1_pid" ) &
killer=$!
curl -fsS -H 'Content-Type: application/json' -d "$matrix2" \
  "$coord_base/v1/matrix" -o "$workdir/sharded2.json"
wait "$killer"
wait "$w1_pid" 2>/dev/null || true
retries=$(metric "$coord_base" tegserve_shard_retries_total)
[ "${retries:-0}" -ge 1 ] || { echo "no local shard retries after killing a worker"; exit 1; }
curl -fsS -H 'Content-Type: application/json' -d "$matrix2" \
  "$single_base/v1/matrix" -o "$workdir/single2.json"
cmp "$workdir/sharded2.json" "$workdir/single2.json" \
  || { echo "post-kill sharded matrix differs from the single-process bytes"; exit 1; }
echo "   $retries shard(s) recomputed locally: bytes still identical"
kill -TERM "$coord_pid" "$single_pid" 2>/dev/null || true
wait "$coord_pid" "$single_pid" 2>/dev/null || true

echo "== persistent store: sweep survives a cold restart"
sweep='{"cycles":["delivery","nedc"],"schemes":["inor","dnor"],"max_duration_s":10,"modules":40}'
boot "$workdir/store1.log" -store-dir "$workdir/store"
store_pid=$pid
state=$(curl -fsS -D - -H 'Content-Type: application/json' -d "$sweep" \
  "$base/v1/sweeps" -o "$workdir/sweep1.json" | tr -d '\r' | sed -n 's/^X-Cache: //p')
[ "$state" = "miss" ] || { echo "first store sweep was '$state', want miss"; exit 1; }
kill -TERM "$store_pid"
wait "$store_pid" || { echo "store tegserve exited nonzero"; cat "$workdir/store1.log"; exit 1; }

boot "$workdir/store2.log" -store-dir "$workdir/store"
store_pid=$pid; pid=""
state=$(curl -fsS -D - -H 'Content-Type: application/json' -d "$sweep" \
  "$base/v1/sweeps" -o "$workdir/sweep2.json" | tr -d '\r' | sed -n 's/^X-Cache: //p')
[ "$state" = "hit" ] || { echo "post-restart sweep was '$state', want hit"; exit 1; }
cmp "$workdir/sweep1.json" "$workdir/sweep2.json" \
  || { echo "sweep bytes changed across the restart"; exit 1; }
computed=$(metric "$base" tegserve_computations_total)
[ "$computed" = "0" ] || { echo "restarted server recomputed $computed jobs, want 0"; exit 1; }
disk_hits=$(metric "$base" tegserve_cache_disk_hits_total)
[ "${disk_hits:-0}" -ge 1 ] || { echo "no disk-tier hits after restart"; exit 1; }
echo "   cold restart served the sweep from disk: byte-identical, zero recomputation"
kill -TERM "$store_pid" 2>/dev/null || true
wait "$store_pid" 2>/dev/null || true

echo "== smoke OK"
