#!/usr/bin/env bash
# Server smoke test: boot tegserve on a random port, exercise the API
# end to end with a real HTTP client (a short WLTC/EHTR run streamed
# over SSE must terminate with a summary event), check the metrics
# endpoint, verify SIGTERM drains the process cleanly (exit 0), and
# prove a digital-twin session survives the process: create -> step ->
# checkpoint -> kill -> restart -> restore -> step must land on the
# same summary an uninterrupted twin reaches.
#
# Run from the repo root: ./scripts/serve_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
cleanup() {
  [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

# boot <logfile> — start tegserve on a random port and set the $pid
# and $base globals once the listen line appears. Called directly (not
# in a command substitution) so the globals survive. JSON logs so the
# access-log assertions can grep structured fields.
boot() {
  "$workdir/tegserve" -addr 127.0.0.1:0 -log-format json >"$1" 2>&1 &
  pid=$!
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*"msg":"listening".*"addr":"\([^"]*\)".*/\1/p' "$1" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "tegserve died:" >&2; cat "$1" >&2; exit 1; }
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "never saw listen line:" >&2; cat "$1" >&2; exit 1; }
  base="http://$addr"
}

# strip_volatile — drop the fields that legitimately differ between a
# restored twin and the original (session id, wall-clock age).
strip_volatile() {
  sed -E 's/"id":"[^"]*",?//g; s/,?"age_s":[0-9.eE+-]+//g'
}

echo "== building tegserve"
go build -o "$workdir/tegserve" ./cmd/tegserve

echo "== booting on a random port"
boot "$workdir/serve.log"
echo "   up at $base"

echo "== healthz"
curl -fsS "$base/healthz"; echo

echo "== registries"
curl -fsS "$base/v1/schemes" | grep -q '"DNOR"' || { echo "schemes missing DNOR"; exit 1; }
curl -fsS "$base/v1/cycles" | grep -q '"wltc"' || { echo "cycles missing wltc"; exit 1; }

echo "== short WLTC/EHTR run over SSE"
sse=$(curl -fsS -N -H 'Content-Type: application/json' \
  -d '{"cycle":"wltc","scheme":"ehtr","duration_s":10,"modules":40,"stream":true}' \
  "$base/v1/runs")
echo "$sse" | grep -q '^event: tick$' || { echo "no tick events:"; echo "$sse" | head -5; exit 1; }
echo "$sse" | grep -q '^event: summary$' || { echo "stream did not terminate with a summary event"; exit 1; }
echo "$sse" | grep -q '"version":1' || { echo "summary is not the versioned result schema"; exit 1; }
echo "   $(echo "$sse" | grep -c '^event: tick$') ticks + summary"

echo "== repeat run is a cache hit"
hit=$(curl -fsS -D - -o /dev/null -H 'Content-Type: application/json' \
  -d '{"cycle":"wltc","scheme":"ehtr","duration_s":10,"modules":40}' \
  "$base/v1/runs" | tr -d '\r' | sed -n 's/^X-Cache: //p')
[ "$hit" = "hit" ] || { echo "expected cache hit, got '$hit'"; exit 1; }

echo "== metrics"
metrics=$(curl -fsS "$base/metrics")
echo "$metrics" | grep '^tegserve_ticks_total ' || { echo "no tick counter"; exit 1; }
echo "$metrics" | grep '^tegserve_cache_hits_total 1$' >/dev/null || { echo "cache hit not counted"; exit 1; }

echo "== request-ID correlation: header echo + access log"
rid=$(curl -fsS -D - -o /dev/null -H 'X-Request-ID: test-123' "$base/healthz" \
  | tr -d '\r' | sed -n 's/^X-Request-Id: //Ip')
[ "$rid" = "test-123" ] || { echo "X-Request-ID echoed as '$rid', want test-123"; exit 1; }
grep -q '"request_id":"test-123"' "$workdir/serve.log" \
  || { echo "access log missing request_id test-123"; grep '"msg":"request"' "$workdir/serve.log" | tail -3; exit 1; }
echo "   test-123 on the response header and in the JSON access log"

echo "== phase timings"
curl -fsS "$base/v1/debug/phases" | grep -q '"sample_every"' || { echo "/v1/debug/phases missing sample_every"; exit 1; }

echo "== digital twin: create -> step -> checkpoint"
twin=$(curl -fsS -H 'Content-Type: application/json' \
  -d '{"scheme":"dnor","modules":40,"seed":3,"battery":true}' "$base/v1/sessions")
id=$(echo "$twin" | sed -n 's/.*"id":"\(tw-[^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "no session id in: $twin"; exit 1; }
curl -fsS -H 'Content-Type: application/json' \
  -d '{"cycle":"delivery","ticks":40}' "$base/v1/sessions/$id/step" >/dev/null
curl -fsS "$base/v1/sessions/$id/checkpoint" -o "$workdir/ck.json"
grep -q '"version":1' "$workdir/ck.json" || { echo "checkpoint is not the versioned schema"; exit 1; }
echo "   twin $id checkpointed at step 40 ($(wc -c <"$workdir/ck.json") bytes)"

# Run the original twin to step 60 before the server dies: this is the
# uninterrupted reference the restored twin must match.
curl -fsS -H 'Content-Type: application/json' \
  -d '{"cycle":"delivery","ticks":20}' "$base/v1/sessions/$id/step" >/dev/null
ref=$(curl -fsS "$base/v1/sessions/$id" | strip_volatile)

echo "== graceful drain on SIGTERM"
kill -TERM "$pid"
wait "$pid" || { echo "tegserve exited nonzero"; cat "$workdir/serve.log"; exit 1; }
grep -q "drained cleanly" "$workdir/serve.log" || { echo "no clean-drain log line"; cat "$workdir/serve.log"; exit 1; }
pid=""

echo "== restart: restore the twin from its checkpoint"
boot "$workdir/serve2.log"
echo "   replacement up at $base"
restored=$(curl -fsS -H 'Content-Type: application/json' \
  -d "{\"from_checkpoint\": $(cat "$workdir/ck.json")}" "$base/v1/sessions")
id2=$(echo "$restored" | sed -n 's/.*"id":"\(tw-[^"]*\)".*/\1/p')
[ -n "$id2" ] || { echo "restore failed: $restored"; exit 1; }
echo "$restored" | grep -q '"steps":40' || { echo "restored twin not at step 40: $restored"; exit 1; }

curl -fsS -H 'Content-Type: application/json' \
  -d '{"cycle":"delivery","ticks":20}' "$base/v1/sessions/$id2/step" >/dev/null
got=$(curl -fsS "$base/v1/sessions/$id2" | strip_volatile)
if [ "$got" != "$ref" ]; then
  echo "restored twin diverged from the uninterrupted reference:"
  echo "  want: $ref"
  echo "  got:  $got"
  exit 1
fi
echo "   restored twin replayed to step 60: summary identical"

kill -TERM "$pid"
wait "$pid" || { echo "second tegserve exited nonzero"; cat "$workdir/serve2.log"; exit 1; }
pid=""

echo "== smoke OK"
