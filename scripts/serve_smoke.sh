#!/usr/bin/env bash
# Server smoke test: boot tegserve on a random port, exercise the API
# end to end with a real HTTP client (a short WLTC/EHTR run streamed
# over SSE must terminate with a summary event), check the metrics
# endpoint, and verify SIGTERM drains the process cleanly (exit 0).
#
# Run from the repo root: ./scripts/serve_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
cleanup() {
  [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building tegserve"
go build -o "$workdir/tegserve" ./cmd/tegserve

echo "== booting on a random port"
"$workdir/tegserve" -addr 127.0.0.1:0 >"$workdir/serve.log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's#.*listening on http://##p' "$workdir/serve.log" | head -n1)
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "tegserve died:"; cat "$workdir/serve.log"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "never saw listen line:"; cat "$workdir/serve.log"; exit 1; }
base="http://$addr"
echo "   up at $base"

echo "== healthz"
curl -fsS "$base/healthz"; echo

echo "== registries"
curl -fsS "$base/v1/schemes" | grep -q '"DNOR"' || { echo "schemes missing DNOR"; exit 1; }
curl -fsS "$base/v1/cycles" | grep -q '"wltc"' || { echo "cycles missing wltc"; exit 1; }

echo "== short WLTC/EHTR run over SSE"
sse=$(curl -fsS -N -H 'Content-Type: application/json' \
  -d '{"cycle":"wltc","scheme":"ehtr","duration_s":10,"modules":40,"stream":true}' \
  "$base/v1/runs")
echo "$sse" | grep -q '^event: tick$' || { echo "no tick events:"; echo "$sse" | head -5; exit 1; }
echo "$sse" | grep -q '^event: summary$' || { echo "stream did not terminate with a summary event"; exit 1; }
echo "$sse" | grep -q '"version":1' || { echo "summary is not the versioned result schema"; exit 1; }
echo "   $(echo "$sse" | grep -c '^event: tick$') ticks + summary"

echo "== repeat run is a cache hit"
hit=$(curl -fsS -D - -o /dev/null -H 'Content-Type: application/json' \
  -d '{"cycle":"wltc","scheme":"ehtr","duration_s":10,"modules":40}' \
  "$base/v1/runs" | tr -d '\r' | sed -n 's/^X-Cache: //p')
[ "$hit" = "hit" ] || { echo "expected cache hit, got '$hit'"; exit 1; }

echo "== metrics"
metrics=$(curl -fsS "$base/metrics")
echo "$metrics" | grep '^tegserve_ticks_total ' || { echo "no tick counter"; exit 1; }
echo "$metrics" | grep '^tegserve_cache_hits_total 1$' >/dev/null || { echo "cache hit not counted"; exit 1; }

echo "== graceful drain on SIGTERM"
kill -TERM "$pid"
wait "$pid" || { echo "tegserve exited nonzero"; cat "$workdir/serve.log"; exit 1; }
grep -q "drained cleanly" "$workdir/serve.log" || { echo "no clean-drain log line"; cat "$workdir/serve.log"; exit 1; }
pid=""

echo "== smoke OK"
