package tegrecon

import "testing"

func shortDrive(t *testing.T) *Trace {
	t.Helper()
	cfg := DefaultDriveConfig()
	cfg.Duration = 60
	tr, err := SynthesizeDrive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFacadeQuickstartPath(t *testing.T) {
	sys := DefaultSystem()
	tr := shortDrive(t)
	ctrl, err := NewDNORController(sys, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sys, tr, ctrl, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyOutJ <= 0 {
		t.Error("facade run harvested nothing")
	}
	if res.Scheme != "DNOR" {
		t.Error(res.Scheme)
	}
}

func TestFacadeAllControllers(t *testing.T) {
	sys := DefaultSystem()
	tr := shortDrive(t)
	builders := []func() (Controller, error){
		func() (Controller, error) { return NewINORController(sys) },
		func() (Controller, error) { return NewEHTRController(sys) },
		func() (Controller, error) { return NewBaselineController(sys) },
	}
	for i, build := range builders {
		ctrl, err := build()
		if err != nil {
			t.Fatalf("builder %d: %v", i, err)
		}
		res, err := Simulate(sys, tr, ctrl, DefaultSimOptions())
		if err != nil {
			t.Fatalf("%s: %v", ctrl.Name(), err)
		}
		if res.EnergyOutJ <= 0 {
			t.Errorf("%s harvested nothing", ctrl.Name())
		}
	}
}

func TestFacadePredictors(t *testing.T) {
	sys := DefaultSystem()
	tr := shortDrive(t)
	for _, build := range []func() (Predictor, error){NewMLRPredictor, NewBPNNPredictor, NewSVRPredictor} {
		p, err := build()
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := NewDNORControllerWith(sys, p, 4, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Simulate(sys, tr, ctrl, DefaultSimOptions()); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
}

func TestFacadeModuleSpec(t *testing.T) {
	if TGM199.Name != "TGM-199-1.4-0.8" {
		t.Error(TGM199.Name)
	}
	if err := TGM199.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExperimentSetup(t *testing.T) {
	s, err := DefaultExperimentSetup()
	if err != nil {
		t.Fatal(err)
	}
	if s.Sys.Modules != 100 {
		t.Errorf("modules = %d", s.Sys.Modules)
	}
}

func TestFacadeFaultsAndCharger(t *testing.T) {
	sys := DefaultSystem()
	tr := shortDrive(t)
	plan, err := NewRandomFaultPlan(sys.Modules, 10, tr.Duration(), 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultSimOptions()
	opts.FaultPlan = plan
	opts.Battery = true
	profile := DefaultChargeProfile()
	opts.ChargeProfile = &profile
	ctrl, err := NewINORController(sys)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sys, tr, ctrl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyOutJ <= 0 || res.BatteryJ <= 0 {
		t.Errorf("fault+charger run: energy %v, battery %v", res.EnergyOutJ, res.BatteryJ)
	}
	if res.AvgTEGEff <= 0 {
		t.Error("missing conversion-efficiency report")
	}
}
