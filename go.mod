module tegrecon

go 1.24
